/**
 * @file
 * Flash-Cosmos SSD firmware (paper Section 6.3, "SSD changes").
 *
 * The firmware is the layer the host's fc_write / fc_read library
 * talks to. It
 *
 *  - translates host requests into Flash-Cosmos command sequences
 *    (delegating plan compilation to the drive's planner),
 *  - executes them *functionally* on the NAND dies (bit-exact data
 *    through the latch models), and
 *  - accounts every transfer and array operation on the event-driven
 *    timing simulator, so a request returns both its result and its
 *    completion time on the configured SSD.
 *
 * This closes the loop between the two simulation modes described in
 * DESIGN.md: the command stream the timing model charges for is
 * exactly the stream the functional model executed.
 */

#ifndef FCOS_CORE_FIRMWARE_H
#define FCOS_CORE_FIRMWARE_H

#include <cstdint>

#include "core/drive.h"
#include "ssd/ssd_sim.h"

namespace fcos::core {

class FcFirmware
{
  public:
    /**
     * @param drive  functional drive (owns the dies and the FTL)
     * @param cfg    timing configuration; geometry is taken from the
     *               drive, bandwidths/latencies from @p cfg. If the
     *               channel shape does not cover the drive's dies,
     *               all dies are placed on one channel.
     */
    FcFirmware(FlashCosmosDrive &drive, const ssd::SsdConfig &cfg);

    /** The timing simulator (for energy / busy-time inspection). */
    ssd::SsdSim &sim() { return sim_; }
    const ssd::SsdConfig &config() const { return cfg_; }

    struct WriteResult
    {
        VectorId id = 0;
        Time completedAt = 0;
    };

    /** Timed fc_write: host -> SSD -> die data-in, ESP programming. */
    WriteResult fcWrite(const BitVector &data,
                        const FlashCosmosDrive::WriteOptions &opts);

    struct ReadResult
    {
        BitVector data;
        Time completedAt = 0;
        FlashCosmosDrive::ReadStats stats;
    };

    /**
     * Timed fc_read: MWS command chains on the planes, result pages
     * over channel + external link.
     */
    ReadResult fcRead(const Expr &expr);

  private:
    static ssd::SsdConfig mergedConfig(FlashCosmosDrive &drive,
                                       ssd::SsdConfig cfg);

    /** Timing-simulator plane index of a physical page. */
    std::uint32_t planeIndex(const ssd::PhysPage &page) const;

    FlashCosmosDrive &drive_;
    ssd::SsdConfig cfg_;
    ssd::SsdSim sim_;
};

} // namespace fcos::core

#endif // FCOS_CORE_FIRMWARE_H
