/**
 * @file
 * FlashCosmosDrive — the functional, bit-exact Flash-Cosmos SSD
 * (paper Section 6.3's fc_write / fc_read library, end to end).
 *
 * The drive owns a set of NAND dies, places vectors through the
 * FC-aware FTL, compiles fc_read expressions with the Planner, and
 * executes the resulting MWS command chains on the dies' latch arrays.
 * With an error injector attached, computation flows through the same
 * error-prone sensing path the paper characterizes; without one it is
 * exact.
 *
 * Data placement follows the application-level contract of §6.3:
 *  - vectors that will be combined must be written into the same
 *    *group* (co-location in one NAND string set per column);
 *  - OR-heavy vectors should be stored inverted (De Morgan, §6.1);
 *  - every vector in a group must have the same length, so group
 *    wordlines advance in lockstep across all columns.
 *
 * Timing realism for full-scale workloads lives in the SSD timing
 * simulator (platforms/); this class is the functional reference the
 * tests validate against.
 */

#ifndef FCOS_CORE_DRIVE_H
#define FCOS_CORE_DRIVE_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/expression.h"
#include "core/plan.h"
#include "core/planner.h"
#include "nand/chip.h"
#include "ssd/ftl.h"
#include "util/bitvector.h"

namespace fcos::core {

class FlashCosmosDrive : public StorageResolver
{
  public:
    struct Config
    {
        std::uint32_t dies = 2;
        nand::Geometry geometry = nand::Geometry::tiny();
        nand::Timings timings{};
        /** ESP extension used for fcWrite (Table 1: 2.0 -> 400 us). */
        double espFactor = 2.0;
        /** Default programming mode for operands. */
        nand::ProgramMode defaultMode = nand::ProgramMode::SlcEsp;
    };

    /** Construct with a test-friendly tiny geometry. */
    FlashCosmosDrive();
    explicit FlashCosmosDrive(const Config &cfg);

    /** Attach/detach the error model on every die. */
    void setErrorInjector(nand::ErrorInjector *injector);

    /** Sentinel: fcWrite allocates a fresh private group. */
    static constexpr std::uint64_t kAutoGroup = ~std::uint64_t{0};

    struct WriteOptions
    {
        /** Placement group (vectors combined together must share it). */
        std::uint64_t group = kAutoGroup;
        /** Store the complement (enables single-MWS OR via De Morgan). */
        bool storeInverted = false;
    };

    /**
     * Store a bit vector (fc_write). Returns its handle.
     * Programs with ESP by default.
     */
    VectorId fcWrite(const BitVector &data, const WriteOptions &opts);
    VectorId fcWrite(const BitVector &data)
    {
        return fcWrite(data, WriteOptions{});
    }

    struct ReadStats
    {
        MwsPlan::Kind planKind = MwsPlan::Kind::Mws;
        std::string planText;
        std::uint64_t mwsCommands = 0; ///< MWS sense commands issued
        std::uint64_t senses = 0;      ///< total sensing operations
        std::uint64_t latchXors = 0;   ///< on-chip XOR ops
        std::uint64_t pageReads = 0;   ///< fallback serial page reads
        std::uint64_t resultPages = 0; ///< pages read out of the chips
        Time nandTime = 0;             ///< summed NAND busy time
        double nandEnergyJ = 0.0;      ///< summed NAND energy
    };

    /**
     * Execute a bulk bitwise expression in flash (fc_read) and return
     * the result vector.
     */
    BitVector fcRead(const Expr &expr, ReadStats *stats = nullptr);

    /** The plan fcRead would execute (for inspection/tests). */
    MwsPlan planFor(const Expr &expr) const;

    /**
     * Execute an expression in flash and persist the result *without
     * leaving the dies*: after each page column's command chain, the
     * cache latch is programmed into a freshly allocated page
     * (program-from-latch, the copyback write path). This is the
     * primitive behind Section 10's "logically complete" claim —
     * computed vectors become operands of later operations, enabling
     * synthesized multi-step functions (see core/arith.h).
     *
     * @param opts  placement of the result vector. storeInverted
     *              stores the complement (the planner then computes
     *              NOT(expr) into the latch).
     */
    VectorId fcCompute(const Expr &expr, const WriteOptions &opts,
                       ReadStats *stats = nullptr);

    /** Read a stored vector back through the regular read path. */
    BitVector readVector(VectorId id, ReadStats *stats = nullptr);

    /** Logical size of a stored vector in bits. */
    std::size_t vectorBits(VectorId id) const;

    /** Physical pages of a vector (placement inspection). */
    const std::vector<ssd::PhysPage> &vectorPages(VectorId id) const;

    std::uint32_t dieCount() const
    {
        return static_cast<std::uint32_t>(chips_.size());
    }
    nand::NandChip &chip(std::uint32_t die);

    // StorageResolver:
    bool isStoredInverted(VectorId id) const override;
    std::uint64_t stringKey(VectorId id) const override;

  private:
    struct VectorInfo
    {
        std::size_t bits = 0;
        bool inverted = false;
        std::uint64_t group = 0;
        std::uint64_t orderInGroup = 0;
        std::vector<ssd::PhysPage> pages;
    };

    const VectorInfo &info(VectorId id) const;

    /** Execute one plan on the page-column @p page_index. Returns the
     *  resulting page data (from the cache latch). */
    BitVector executeOnColumn(const MwsPlan &plan, const Expr &expr,
                              std::size_t page_index, ReadStats *stats);

    void addOp(ReadStats *stats, const nand::OpResult &op, bool is_sense);

    Config cfg_;
    std::vector<std::unique_ptr<nand::NandChip>> chips_;
    ssd::Ftl ftl_;
    Planner planner_;
    std::vector<VectorInfo> vectors_;
    /** Per column: a reserved, never-programmed wordline (senses as
     *  all-'1'; used by the final-NOT XOR trick). */
    std::vector<ssd::PhysPage> erased_ref_;
    /** group id -> {vector count, page count} for lockstep checking. */
    std::unordered_map<std::uint64_t, std::pair<std::uint64_t,
                                                std::uint64_t>>
        group_info_;
    std::uint64_t next_auto_group_ = 1ULL << 32;
};

} // namespace fcos::core

#endif // FCOS_CORE_DRIVE_H
