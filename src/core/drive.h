/**
 * @file
 * FlashCosmosDrive — the functional, bit-exact Flash-Cosmos SSD
 * (paper Section 6.3's fc_write / fc_read library, end to end).
 *
 * The drive places vectors through the FC-aware FTL and compiles
 * fc_read expressions with the Planner; *execution* is delegated to
 * the multi-die compute engine (engine/engine.h): every operation is
 * sharded into per-(die, plane) column programs that the engine runs
 * event-driven over a channels x dies chip farm. One call therefore
 * yields bit-exact results *and* a contention-accurate timeline and
 * energy ledger (ReadStats::makespan, engine().energy()).
 *
 * With an error injector attached, computation flows through the same
 * error-prone sensing path the paper characterizes; without one it is
 * exact.
 *
 * Data placement follows the application-level contract of §6.3:
 *  - vectors that will be combined must be written into the same
 *    *group* (co-location in one NAND string set per column);
 *  - OR-heavy vectors should be stored inverted (De Morgan, §6.1);
 *  - every vector in a group must have the same length, so group
 *    wordlines advance in lockstep across all columns.
 *
 * Operands that violate co-location physically — a one-page vector
 *  combined against striped ones — can be brought into a group with
 * fcReplicate, which copies the page die-to-die through the
 * controller (the engine's Equation-1 replication path).
 */

#ifndef FCOS_CORE_DRIVE_H
#define FCOS_CORE_DRIVE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/expression.h"
#include "core/plan.h"
#include "core/planner.h"
#include "core/result_sink.h"
#include "engine/admission.h"
#include "engine/engine.h"
#include "nand/chip.h"
#include "ssd/ftl.h"
#include "util/bitvector.h"

namespace fcos::core {

/** Sentinel: fcWrite allocates a fresh private group. */
inline constexpr std::uint64_t kDriveAutoGroup = ~std::uint64_t{0};

/** Sentinel VectorId: "no vector" (DriveWriteOptions::replaces). */
inline constexpr VectorId kDriveNoVector = ~VectorId{0};

/** Placement options of write-like operations (namespace-scope so
 *  member declarations can default-construct it; use it as
 *  FlashCosmosDrive::WriteOptions). */
struct DriveWriteOptions
{
    /** Placement group (vectors combined together must share it). */
    std::uint64_t group = kDriveAutoGroup;
    /** Store the complement (enables single-MWS OR via De Morgan). */
    bool storeInverted = false;
    /** Stripe start: page i lands on (die, plane) column
     *  (homeColumn + i) % columns. All vectors of one group must
     *  share it (lockstep). Spreading small independent vectors
     *  across home columns is what lets concurrent requests land
     *  on different dies. */
    std::uint32_t homeColumn = 0;
    /** Overwrite semantics: trim this vector before allocating the
     *  new one (its pages become invalid capacity GC can reclaim;
     *  the handle is recycled). The closed-loop update traffic a
     *  served drive sees. kDriveNoVector = plain append. */
    VectorId replaces = kDriveNoVector;
};

/** Options of an async submit* call (FlashCosmosDrive::RequestOptions). */
struct DriveRequestOptions
{
    /** Simulated arrival time; values <= now() arrive immediately,
     *  later ones are staged on the engine clock (an open-loop
     *  arrival process, as a traffic generator supplies). */
    Time arrival = 0;
    /** Optional completion hook: fires at the request's simulated
     *  completion with its lifecycle timestamps (arrival / admitted /
     *  completed) — end-to-end latency including queue wait, which
     *  ReadStats::makespan deliberately excludes. Runs in a serial
     *  context; may submit follow-up requests. */
    std::function<void(const engine::RequestQueue::Outcome &)> onOutcome;
};

class FlashCosmosDrive : public StorageResolver
{
  public:
    struct Config
    {
        /** Channel buses; dies of one channel share its bandwidth. */
        std::uint32_t channels = 1;
        /** Dies per channel (total dies = channels * dies). */
        std::uint32_t dies = 2;
        nand::Geometry geometry = nand::Geometry::tiny();
        nand::Timings timings{};
        /** Page-payload backend of every die (nand/page_store.h).
         *  Sparse lets Table-1 geometries instantiate in tests. */
        nand::PageStoreKind pageStore = nand::PageStoreKind::Sparse;
        /** I/O-rate/energy constants (shared ssd/engine authority). */
        ssd::IoParams io{};
        /** Host worker lanes for engine execution (0 = FCOS_WORKERS
         *  env default, 1 = serial); bit-identical at any count. */
        std::uint32_t workers = 0;
        /** ESP extension used for fcWrite (Table 1: 2.0 -> 400 us). */
        double espFactor = 2.0;
        /** Default programming mode for operands. */
        nand::ProgramMode defaultMode = nand::ProgramMode::SlcEsp;
        /** Non-empty: enable the span tracer and write a Chrome
         *  trace_event JSON timeline here at process exit (same effect
         *  as FCOS_TRACE=<file>). */
        std::string traceFile;
        /** Non-empty: enable the metrics registry and write the
         *  end-of-run report here (same as FCOS_METRICS=<file>). */
        std::string metricsFile;
        /** Admission window of the request queue: max concurrently
         *  in-flight requests (submit* overlaps up to this many
         *  conflict-free requests; the sync fc* wrappers never hold
         *  more than one). */
        std::uint32_t admissionDepth = 8;
        /** QoS admission weights (reads : writes : compute) under
         *  contention; see engine::RequestQueue. */
        std::uint32_t qosReadWeight = 1;
        std::uint32_t qosWriteWeight = 1;
        std::uint32_t qosComputeWeight = 1;
    };

    /** Construct with a test-friendly tiny geometry. */
    FlashCosmosDrive();
    explicit FlashCosmosDrive(const Config &cfg);

    /** Attach/detach the error model on every die. */
    void setErrorInjector(nand::ErrorInjector *injector);

    /** Sentinel: fcWrite allocates a fresh private group. */
    static constexpr std::uint64_t kAutoGroup = kDriveAutoGroup;

    /** Sentinel: WriteOptions::replaces "no vector". */
    static constexpr VectorId kNoVector = kDriveNoVector;

    using WriteOptions = DriveWriteOptions;

    /**
     * Store a bit vector (fc_write). Returns its handle.
     * Programs with ESP by default; pages shard round-robin over every
     * (die, plane) column, so all dies program in parallel.
     */
    VectorId fcWrite(const BitVector &data, const WriteOptions &opts);
    VectorId fcWrite(const BitVector &data)
    {
        return fcWrite(data, WriteOptions{});
    }

    /**
     * Store a vector of @p pages procedurally generated pages
     * (fc_write for data the host can describe instead of ship):
     * @p gen maps each page index to its image descriptor. The full
     * data-in transfer and ESP program are still paid on the timeline,
     * but with the sparse backend no payload is materialized — the way
     * Table-1-scale vectors are seeded inside CTest. storeInverted
     * stores each image's complement at descriptor level.
     */
    VectorId fcWritePages(
        const std::function<nand::PageImage(std::uint64_t)> &gen,
        std::uint64_t pages, const WriteOptions &opts);

    struct ReadStats
    {
        MwsPlan::Kind planKind = MwsPlan::Kind::Mws;
        std::string planText;
        std::uint64_t mwsCommands = 0; ///< MWS sense commands issued
        std::uint64_t senses = 0;      ///< total sensing operations
        std::uint64_t latchXors = 0;   ///< on-chip XOR ops
        std::uint64_t pageReads = 0;   ///< fallback serial page reads
        std::uint64_t resultPages = 0; ///< pages read out of the chips
        Time nandTime = 0;             ///< summed NAND busy time
        double nandEnergyJ = 0.0;      ///< summed NAND energy
        /** Contention-accurate span of this operation on the engine's
         *  event-driven timeline (dies + channels). */
        Time makespan = 0;
        /** Chunks delivered to the result sink (== resultPages). */
        std::uint64_t streamChunks = 0;
        /** Memory high-water mark of the streamed read: most result
         *  pages ever held at once while re-ordering out-of-order
         *  column completions (the fallback path, which buffers every
         *  page until drain, reports its full page count). */
        std::uint64_t streamPeakPages = 0;
    };

    /**
     * Execute a bulk bitwise expression in flash (fc_read), streaming
     * result pages into @p sink in strictly increasing page order as
     * they come off the channel buses. Page columns execute
     * concurrently across the farm's dies; for MWS/XOR-planned reads
     * peak memory is the re-ordering window (about one page stripe),
     * never the dense result — the path beyond-DRAM workloads use.
     * The serial-read Fallback plan still evaluates controller-side
     * and buffers every result page before streaming; check
     * planFor(expr).kind (or ReadStats::planKind/streamPeakPages)
     * before relying on the O(window) bound.
     */
    void fcRead(const Expr &expr, ResultSink &sink,
                ReadStats *stats = nullptr);

    /**
     * Execute a bulk bitwise expression in flash (fc_read) and return
     * the result vector: a thin wrapper collecting the streamed chunks
     * through a DenseCollectSink. Timing, energy, and payload are
     * bit-identical to the sink overload.
     */
    BitVector fcRead(const Expr &expr, ReadStats *stats = nullptr);

    /** The plan fcRead would execute (for inspection/tests). */
    MwsPlan planFor(const Expr &expr) const;

    /**
     * Execute an expression in flash and persist the result *without
     * leaving the dies*: after each page column's command chain, the
     * cache latch is programmed into a freshly allocated page
     * (program-from-latch, the copyback write path). This is the
     * primitive behind Section 10's "logically complete" claim —
     * computed vectors become operands of later operations, enabling
     * synthesized multi-step functions (see core/arith.h).
     *
     * @param opts  placement of the result vector. storeInverted
     *              stores the complement (the planner then computes
     *              NOT(expr) into the latch).
     */
    VectorId fcCompute(const Expr &expr, const WriteOptions &opts,
                       ReadStats *stats = nullptr);

    /**
     * Replicate a single-page vector across @p pages pages of
     * @p opts.group so it can join a group's MWS strings on every
     * column (Equation-1 co-location). Each copy is made die-to-die
     * through the controller — sense, channel out, channel in,
     * ESP program — on the engine's timeline. The returned vector
     * behaves as the source page tiled @p pages times.
     */
    VectorId fcReplicate(VectorId src, std::uint64_t pages,
                         const WriteOptions &opts,
                         ReadStats *stats = nullptr);

    /** Read a stored vector back through the regular read path,
     *  streaming its pages into @p sink in page order. */
    void readVector(VectorId id, ResultSink &sink,
                    ReadStats *stats = nullptr);

    /** Read a stored vector back as a dense vector (DenseCollectSink
     *  wrapper over the streamed path). */
    BitVector readVector(VectorId id, ReadStats *stats = nullptr);

    // ------------------------------------------------------------------
    // Concurrent request API
    //
    // Every fc* operation above is a thin submit-and-wait wrapper over
    // these: submit* hands the operation to the admission queue
    // (engine::RequestQueue) and returns immediately with a handle;
    // independent requests overlap on the engine's shared timeline
    // while conflicting ones (block-grained read/write footprints)
    // serialize in arrival order. Submitted serially — each waitAll()ed
    // before the next — the schedule, timeline, energy ledger, and
    // streamed payloads are bit-identical to the historical
    // drain-per-op behavior at any worker count.
    //
    // Lifetime: sinks, ReadStats, and generator callbacks passed to
    // submit* must stay alive until waitAll() (or advanceTo() past the
    // request's completion). ReadStats::makespan of a concurrent
    // request is its admitted->completed span; queue wait is recorded
    // separately ("engine.admission.wait.*").
    // ------------------------------------------------------------------

    using RequestId = engine::RequestId;
    using RequestOptions = DriveRequestOptions;

    /** Handle pair of a submitted write-like request: the request plus
     *  the vector it will have produced once completed. */
    struct Submitted
    {
        RequestId request = 0;
        VectorId vector = 0;
    };

    /** Async fcRead. @p sink streams this request's pages only. */
    RequestId submitRead(const Expr &expr, ResultSink &sink,
                         ReadStats *stats = nullptr,
                         const RequestOptions &ro = {});

    /** Async fcWrite (the payload is copied at submit). */
    Submitted submitWrite(const BitVector &data,
                          const WriteOptions &opts = {},
                          const RequestOptions &ro = {});

    /** Async fcWritePages (@p gen runs host-side at submit). */
    Submitted submitWritePages(
        const std::function<nand::PageImage(std::uint64_t)> &gen,
        std::uint64_t pages, const WriteOptions &opts = {},
        const RequestOptions &ro = {});

    /** Async fcCompute. */
    Submitted submitCompute(const Expr &expr, const WriteOptions &opts,
                            ReadStats *stats = nullptr,
                            const RequestOptions &ro = {});

    /** Async fcReplicate. */
    Submitted submitReplicate(VectorId src, std::uint64_t pages,
                              const WriteOptions &opts,
                              ReadStats *stats = nullptr,
                              const RequestOptions &ro = {});

    /** Async readVector. */
    RequestId submitReadVector(VectorId id, ResultSink &sink,
                               ReadStats *stats = nullptr,
                               const RequestOptions &ro = {});

    /** Run the timeline until every submitted request has completed. */
    void waitAll();

    /** Run the timeline up to @p t, leaving later work in flight —
     *  the pacing/backpressure primitive for paced submission loops.
     *  @return the clock (== max(now(), t)). */
    Time advanceTo(Time t);

    /** Current simulated time. */
    Time now() const { return engine_.now(); }

    /** The admission queue (inspection: depth, per-class counts). */
    const engine::RequestQueue &admission() const { return rq_; }

    /**
     * Trim (delete) a stored vector: every logical page is freed in
     * the FTL — the physical pages become invalid capacity garbage
     * collection reclaims — and the handle is recycled for a later
     * write. The host-side contract of a served drive: without trim
     * (or WriteOptions::replaces) capacity only ever fills.
     *
     * The caller must not trim a vector any in-flight request reads
     * or computes from (the sync fc* wrappers make this trivial; a
     * closed-loop generator trims only its own completed chains).
     */
    void trimVector(VectorId id);

    /** Stored (live, not-trimmed) vectors. Steady state under
     *  overwrite/trim traffic: O(working set), not O(total writes). */
    std::size_t liveVectorCount() const
    {
        return vectors_.size() - free_ids_.size();
    }

    /** Garbage-collection lifetime totals (monotonic). */
    struct GcTotals
    {
        std::uint64_t runs = 0;         ///< collect() invocations
        std::uint64_t pageCopies = 0;   ///< live pages relocated
        std::uint64_t blocksErased = 0; ///< victim blocks recycled
        /** Host-visible pages written (fcWrite/fcCompute/...); GC
         *  write amplification = 1 + pageCopies / hostPagesWritten. */
        std::uint64_t hostPagesWritten = 0;
    };
    const GcTotals &gcTotals() const { return gc_; }

    /** The FTL (capacity/occupancy inspection). */
    const ssd::Ftl &ftl() const { return ftl_; }

    /** Logical size of a stored vector in bits. */
    std::size_t vectorBits(VectorId id) const;

    /** Physical pages of a vector, resolved through the FTL at call
     *  time (placement inspection; by value — GC may relocate). */
    std::vector<ssd::PhysPage> vectorPages(VectorId id) const;

    std::uint32_t dieCount() const
    {
        return engine_.farm().dieCount();
    }
    nand::NandChip &chip(std::uint32_t die)
    {
        return engine_.farm().chip(die);
    }

    /** The multi-die engine (timeline + unified energy ledger). */
    engine::ComputeEngine &engine() { return engine_; }
    const engine::ComputeEngine &engine() const { return engine_; }

    // StorageResolver:
    bool isStoredInverted(VectorId id) const override;
    std::uint64_t stringKey(VectorId id) const override;

  private:
    struct VectorInfo
    {
        std::size_t bits = 0;
        bool inverted = false;
        bool live = false;
        std::uint64_t group = 0;
        std::uint64_t orderInGroup = 0;
        /** Logical pages; physical placement goes through
         *  ftl_.physOf() so GC relocation is transparent. */
        std::vector<ssd::Lpn> pages;
    };

    const VectorInfo &info(VectorId id) const;

    /** Physical address of logical page @p j of a vector. */
    ssd::PhysPage pageAt(const VectorInfo &v, std::size_t j) const
    {
        return ftl_.physOf(v.pages[j]);
    }

    /** Resolve a vector's logical pages to physical pages (snapshot
     *  at call time). */
    std::vector<ssd::PhysPage>
    resolvePages(const std::vector<ssd::Lpn> &lpns) const;

    /** Allocate the VectorInfo bookkeeping for a new vector. Runs
     *  GC first when the write would breach the free-block reserve. */
    VectorInfo makeVector(std::size_t bits, std::uint64_t group,
                          bool inverted, std::uint64_t pages,
                          std::uint32_t home_column);

    /** Register @p v under a (possibly recycled) VectorId. */
    VectorId allocVectorId(VectorInfo &&v);

    /** Collect every column whose free-block reserve is breached,
     *  submitting relocation+erase traffic onto the timeline. */
    void maybeCollect();

    /** Submit one column's GC plan as an engine request: copyback of
     *  each live page, then the victim-block erase (the plane FIFO
     *  orders copies before the erase). */
    void submitGcPlan(const ssd::Ftl::GcPlan &plan);

    /** Column program executing @p plan on page column @p page_index
     *  (Kind::Mws / Kind::Xor plans). */
    engine::ColumnProgram planProgram(const MwsPlan &plan,
                                      const Expr &expr,
                                      std::size_t page_index) const;

    /** Column program for the serial-read fallback: reads every leaf
     *  page to the controller, capturing values into @p values. */
    engine::ColumnProgram fallbackProgram(
        const Expr &expr, std::size_t page_index,
        std::shared_ptr<std::map<VectorId, BitVector>> values) const;

    /** Resolve (die, plane) of a page column; asserts co-location. */
    void columnLocation(const Expr &expr, std::size_t page_index,
                        std::uint32_t *die, std::uint32_t *plane) const;

    /** Submit one page-program write (data-in over the channel);
     *  @p done fires at the program's simulated completion. */
    void submitPageWrite(const ssd::PhysPage &dst, nand::PageImage page,
                         engine::OpStats *stats,
                         std::function<void()> done = {});

    /** Merge engine counters into @p stats (except resultPages). */
    static void mergeStats(ReadStats *stats, const engine::OpStats &os,
                           Time makespan);

    /** Block-grained conflict keys ((die, plane, block) packed) of a
     *  page set, sorted and deduped. */
    std::vector<std::uint64_t>
    blockKeysOf(const std::vector<ssd::PhysPage> &pages) const;

    /** Union of blockKeysOf over every leaf vector of @p leaves. */
    std::vector<std::uint64_t>
    readKeysOf(const std::vector<VectorId> &leaves) const;

    /** Clamp a requested arrival to the engine clock. */
    Time arrivalTime(const RequestOptions &ro) const;

    /** Streamed-read request core shared by submitRead (planned
     *  paths) and submitReadVector: per-request OpStats + ordered
     *  chunk stream, one engine program per page column from
     *  @p make_program, completion finalizing stats and the sink. */
    RequestId submitStreamedRead(
        const char *name, std::size_t pages, std::size_t bits,
        std::vector<std::uint64_t> read_keys, ResultSink &sink,
        ReadStats *stats,
        std::function<engine::ColumnProgram(std::size_t)> make_program,
        const RequestOptions &ro);

    /** Record one drive-level request window [@p begin, @p end] on the
     *  "requests" trace track and its end-to-end latency histogram
     *  (@p name must be a string literal). Non-overlapping windows
     *  render as spans (bit-identical to the historical serial trace);
     *  a window overlapping the previous one records as an X overlay.
     *  One branch when obs is off. */
    void noteRequest(const char *name, Time begin, Time end);

    Config cfg_;
    engine::ComputeEngine engine_;
    /** Admission/request queue fronting the scheduler (tentpole of the
     *  concurrent request API; constructed after engine_). */
    engine::RequestQueue rq_;
    ssd::Ftl ftl_;
    Planner planner_;
    std::vector<VectorInfo> vectors_;
    /** Recycled VectorId slots (LIFO), from trimVector. */
    std::vector<VectorId> free_ids_;
    GcTotals gc_;
    /** Per column: a reserved, never-programmed wordline (senses as
     *  all-'1'; used by the final-NOT XOR trick). Pinned in the FTL
     *  so GC never relocates it — it must stay unprogrammed. */
    std::vector<ssd::PhysPage> erased_ref_;
    /** Per-group lockstep bookkeeping (see makeVector). */
    struct GroupInfo
    {
        std::uint64_t count = 0;
        /** Vectors of the group still live; the last trim drops the
         *  group (and its FTL slots). */
        std::uint64_t live = 0;
        std::uint64_t pages = 0;
        std::uint32_t homeColumn = 0;
    };
    std::unordered_map<std::uint64_t, GroupInfo> group_info_;
    std::uint64_t next_auto_group_ = 1ULL << 32;

    /** Request-level observability (epochs + track captured at
     *  construction; see obs/obs.h). */
    std::uint64_t trace_epoch_ = 0;
    std::uint64_t m_epoch_ = 0;
    std::uint32_t req_track_ = 0;
    /** Latest request-window end recorded on the track (span vs
     *  overlay decision; see noteRequest). */
    Time req_last_end_ = 0;
};

} // namespace fcos::core

#endif // FCOS_CORE_DRIVE_H
