/**
 * @file
 * Bulk bitwise expressions over stored bit vectors.
 *
 * The Flash-Cosmos public API (fc_read, Section 6.3) takes an
 * expression tree over vector handles; the planner compiles it to MWS
 * command chains. Expr is a small immutable AST with a reference
 * evaluator used by the property tests (plan execution must equal
 * reference evaluation bit-for-bit).
 */

#ifndef FCOS_CORE_EXPRESSION_H
#define FCOS_CORE_EXPRESSION_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/bitvector.h"

namespace fcos::core {

/** Handle to a stored bit vector. */
using VectorId = std::uint32_t;

enum class BitOp : std::uint8_t
{
    Leaf,
    Not,
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
};

const char *bitOpName(BitOp op);

class Expr
{
  public:
    /** A stored vector. */
    static Expr leaf(VectorId id);

    /** N-ary operators (n >= 1; Not is unary). */
    static Expr apply(BitOp op, std::vector<Expr> children);

    static Expr Not(Expr e) { return apply(BitOp::Not, {std::move(e)}); }
    static Expr And(std::vector<Expr> es)
    {
        return apply(BitOp::And, std::move(es));
    }
    static Expr Or(std::vector<Expr> es)
    {
        return apply(BitOp::Or, std::move(es));
    }
    static Expr Nand(std::vector<Expr> es)
    {
        return apply(BitOp::Nand, std::move(es));
    }
    static Expr Nor(std::vector<Expr> es)
    {
        return apply(BitOp::Nor, std::move(es));
    }
    static Expr Xor(Expr a, Expr b)
    {
        return apply(BitOp::Xor, {std::move(a), std::move(b)});
    }
    static Expr Xnor(Expr a, Expr b)
    {
        return apply(BitOp::Xnor, {std::move(a), std::move(b)});
    }

    BitOp op() const { return op_; }
    VectorId id() const { return id_; }
    const std::vector<Expr> &children() const { return *children_; }

    /** All leaf vector ids (with duplicates removed). */
    std::vector<VectorId> leafIds() const;

    /**
     * Reference evaluation: @p lookup maps ids to their *logical*
     * values. All vectors must have equal size.
     */
    BitVector evaluate(
        const std::function<const BitVector &(VectorId)> &lookup) const;

    /** Human-readable rendering, e.g. "AND(v0, OR(v1, v2))". */
    std::string toString() const;

    /** Operator sugar: a & b, a | b, a ^ b, ~a. */
    friend Expr operator&(Expr a, Expr b)
    {
        return And({std::move(a), std::move(b)});
    }
    friend Expr operator|(Expr a, Expr b)
    {
        return Or({std::move(a), std::move(b)});
    }
    friend Expr operator^(Expr a, Expr b)
    {
        return Xor(std::move(a), std::move(b));
    }
    friend Expr operator~(Expr a) { return Not(std::move(a)); }

  private:
    Expr() = default;

    BitOp op_ = BitOp::Leaf;
    VectorId id_ = 0;
    std::shared_ptr<const std::vector<Expr>> children_;
};

} // namespace fcos::core

#endif // FCOS_CORE_EXPRESSION_H
