/**
 * @file
 * Compiles bitwise expressions to MWS command chains (Section 6).
 *
 * The planner needs to know, for every vector, (i) whether it is
 * stored inverted (the §6.1 De Morgan trick for OR) and (ii) which
 * NAND string set it occupies (co-location). It receives both through
 * the StorageResolver interface so it stays independent of the drive.
 *
 * Planning rules (derivation in plan.h):
 *
 *  - a *literal* l (v or NOT v) is realizable inside a normal command's
 *    string iff stored(v) == l, and inside an inverse command's string
 *    iff stored(v) == NOT l;
 *  - a normal command computes OR over strings of AND over members'
 *    stored data;
 *  - an inverse command computes the complement, i.e. AND over strings
 *    of OR over members' complemented stored data — this is how one
 *    command yields (C1+C3)(D2+D4) from inverse-stored operands
 *    (Figure 16);
 *  - AND-chains fold with the AND-merge dump; OR-chains fold with the
 *    legacy OR transfer; at most one operand of any node may itself
 *    need a multi-command chain (single accumulator);
 *  - XOR/XNOR of two literals uses the on-chip latch XOR;
 *  - everything else falls back to serial reads + controller-side
 *    evaluation, with the reason recorded.
 */

#ifndef FCOS_CORE_PLANNER_H
#define FCOS_CORE_PLANNER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/expression.h"
#include "core/plan.h"

namespace fcos::core {

/** Storage facts the planner needs about vectors. */
class StorageResolver
{
  public:
    virtual ~StorageResolver() = default;

    /** True if the vector's pages hold the complement of its value. */
    virtual bool isStoredInverted(VectorId id) const = 0;

    /**
     * Opaque key identifying the NAND string set (sub-block chain
     * position) the vector occupies; vectors with equal keys are
     * co-located and can share a string.
     */
    virtual std::uint64_t stringKey(VectorId id) const = 0;
};

class Planner
{
  public:
    explicit Planner(const StorageResolver &storage) : storage_(storage)
    {}

    /**
     * Compile @p expr. Always succeeds; inspect plan.kind for the
     * fallback case.
     */
    MwsPlan plan(const Expr &expr) const;

  private:
    /** Negation-normal-form node. */
    struct Nnf
    {
        enum class Kind { Lit, And, Or, Xor } kind = Kind::Lit;
        Literal lit{};
        bool xorInvert = false; ///< Kind::Xor: XNOR when true
        std::vector<Nnf> children;
    };

    static Nnf toNnf(const Expr &e, bool negate);
    static void flatten(Nnf &n);

    /** Try to realize a node as a single command. */
    std::optional<PlanCommand> singleCommand(const Nnf &n) const;
    /** Try to realize a node as one string of a normal command. */
    std::optional<PlanString> normalString(const Nnf &n) const;
    /** Literal usable in a normal-command string? */
    bool normalLiteralOk(const Literal &l) const;
    /** Literal usable in an inverse-command string? */
    bool inverseLiteralOk(const Literal &l) const;

    /** Plan an And/Or node as a command chain; nullopt on failure. */
    std::optional<std::vector<PlanCommand>> planChain(const Nnf &n) const;

    const StorageResolver &storage_;
};

} // namespace fcos::core

#endif // FCOS_CORE_PLANNER_H
