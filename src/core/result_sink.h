/**
 * @file
 * Streamed result delivery for bulk bitwise reads.
 *
 * The drive's original read path materialized every result as one
 * dense util::BitVector — O(capacity) memory, which caps full-drive
 * (multi-GB-result) workloads even after the sparse page store removed
 * the page-*payload* ceiling. ResultSink inverts the contract: result
 * pages stream to a consumer one chunk at a time, in page-index order,
 * and only the consumer decides how much state to keep.
 *
 * Backends:
 *  - DenseCollectSink  — assembles the dense vector (bit-for-bit the
 *    legacy return value; the BitVector-returning APIs wrap it);
 *  - ChunkCallbackSink — forwards each chunk to a user callback;
 *  - DigestSink        — running FNV-1a fold over the valid bits;
 *  - PopcountSink      — running population count;
 *  - SparseCompareSink — verifies each page against a procedural
 *    expectation (e.g. a nand::PageImage fold) as it arrives, never
 *    holding more than the one chunk being checked;
 *  - TeeSink           — fans one stream out to several sinks.
 *
 * Chunks always arrive with strictly increasing page indices (the
 * engine's OrderedChunkStream re-orders out-of-order completions), so
 * streaming consumers need no reassembly logic of their own.
 */

#ifndef FCOS_CORE_RESULT_SINK_H
#define FCOS_CORE_RESULT_SINK_H

#include <cstdint>
#include <functional>
#include <vector>

#include "nand/page_store.h"
#include "util/bitvector.h"

namespace fcos::core {

/** Geometry of one result stream, announced before the first chunk. */
struct StreamShape
{
    std::uint64_t pages = 0;    ///< chunks the stream will deliver
    std::uint64_t pageBits = 0; ///< bits per full page chunk
    std::uint64_t totalBits = 0; ///< logical result size
};

/** One result page in flight. @p page holds a full page; only the
 *  first @p bits are part of the logical result (the tail of the last
 *  page is padding). The payload reference is valid ONLY for the
 *  duration of consume() — a sink that needs the bits later must copy
 *  them (storing a ResultChunk stores a dangling reference). */
struct ResultChunk
{
    std::uint64_t index = 0;     ///< page index within the result
    std::uint64_t bitOffset = 0; ///< == index * pageBits
    std::uint64_t bits = 0;      ///< valid bits of this chunk
    const BitVector &page;
};

class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Announces the stream shape; called once, before any chunk. */
    virtual void begin(const StreamShape &shape) { (void)shape; }

    /** One result page, indices strictly increasing. */
    virtual void consume(const ResultChunk &chunk) = 0;

    /** Stream complete; every page was delivered exactly once. */
    virtual void end() {}
};

/** Collects the stream into the legacy dense result vector. */
class DenseCollectSink final : public ResultSink
{
  public:
    void begin(const StreamShape &shape) override;
    void consume(const ResultChunk &chunk) override;

    const BitVector &result() const { return result_; }
    BitVector take() { return std::move(result_); }

  private:
    BitVector result_;
};

/** Forwards every chunk to @p fn (no state of its own). */
class ChunkCallbackSink final : public ResultSink
{
  public:
    using Fn = std::function<void(const ResultChunk &)>;
    explicit ChunkCallbackSink(Fn fn) : fn_(std::move(fn)) {}

    void consume(const ResultChunk &chunk) override { fn_(chunk); }

  private:
    Fn fn_;
};

/**
 * Order-sensitive running digest (64-bit FNV-1a over the valid words
 * of every chunk, with each chunk's index folded in). Two streams have
 * equal digests iff they delivered identical payloads in identical
 * chunk order — the determinism suite's cross-farm-shape certificate.
 */
class DigestSink final : public ResultSink
{
  public:
    void consume(const ResultChunk &chunk) override;

    std::uint64_t digest() const { return digest_; }

    /** Digest of @p v streamed as @p page_bits-sized chunks (what a
     *  streamed read of a vector holding @p v must produce). */
    static std::uint64_t digestOf(const BitVector &v,
                                  std::uint64_t page_bits);

  private:
    std::uint64_t digest_ = 14695981039346656037ULL; ///< FNV offset
};

/** Running population count over the valid bits of every chunk. */
class PopcountSink final : public ResultSink
{
  public:
    void consume(const ResultChunk &chunk) override;

    std::uint64_t ones() const { return ones_; }
    std::uint64_t bits() const { return bits_; }

  private:
    std::uint64_t ones_ = 0;
    std::uint64_t bits_ = 0;
};

/**
 * Streaming comparator: checks each arriving page against a
 * procedurally generated expectation, so a beyond-DRAM result can be
 * verified bit-exactly while peak memory stays at one page. The
 * expectation is a pure function of the page index — typically a fold
 * of the nand::PageImage descriptors the operands were written with.
 */
class SparseCompareSink final : public ResultSink
{
  public:
    /** @p expect maps (page index, page width) to the expected bits. */
    using PageFn =
        std::function<BitVector(std::uint64_t, std::uint64_t)>;
    explicit SparseCompareSink(PageFn expect) : expect_(std::move(expect))
    {}

    /** Comparator against a single procedural image per page. */
    static SparseCompareSink
    fromImages(std::function<nand::PageImage(std::uint64_t)> gen);

    void begin(const StreamShape &shape) override { shape_ = shape; }
    void consume(const ResultChunk &chunk) override;

    std::uint64_t pagesChecked() const { return checked_; }
    std::uint64_t mismatchedPages() const { return mismatched_; }
    /** Index of the first mismatching page (or ~0 if none). */
    std::uint64_t firstMismatch() const { return first_mismatch_; }
    bool allMatched() const { return checked_ > 0 && mismatched_ == 0; }

  private:
    PageFn expect_;
    StreamShape shape_;
    std::uint64_t checked_ = 0;
    std::uint64_t mismatched_ = 0;
    std::uint64_t first_mismatch_ = ~std::uint64_t{0};
};

/** Fans one stream out to several sinks (none owned). */
class TeeSink final : public ResultSink
{
  public:
    explicit TeeSink(std::vector<ResultSink *> sinks)
        : sinks_(std::move(sinks))
    {}

    void begin(const StreamShape &shape) override;
    void consume(const ResultChunk &chunk) override;
    void end() override;

  private:
    std::vector<ResultSink *> sinks_;
};

} // namespace fcos::core

#endif // FCOS_CORE_RESULT_SINK_H
