#include "core/result_sink.h"

#include <bit>

#include "util/log.h"

namespace fcos::core {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
fnvWord(std::uint64_t h, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (8 * i)) & 0xFF;
        h *= kFnvPrime;
    }
    return h;
}

/** Fold the valid prefix of @p chunk into @p h: whole words plus a
 *  masked tail word, with the chunk index mixed in first so chunk
 *  order is part of the digest. */
std::uint64_t
foldChunk(std::uint64_t h, const ResultChunk &chunk)
{
    h = fnvWord(h, chunk.index);
    const std::vector<std::uint64_t> &words = chunk.page.words();
    std::uint64_t full = chunk.bits / 64;
    fcos_assert(BitVector::wordsFor(chunk.bits) <= words.size(),
                "chunk shorter than its declared bit count");
    for (std::uint64_t w = 0; w < full; ++w)
        h = fnvWord(h, words[w]);
    std::uint64_t tail = chunk.bits % 64;
    if (tail)
        h = fnvWord(h, words[full] & ((1ULL << tail) - 1));
    return h;
}

} // namespace

void
DenseCollectSink::begin(const StreamShape &shape)
{
    result_ = BitVector(shape.totalBits);
}

void
DenseCollectSink::consume(const ResultChunk &chunk)
{
    fcos_assert(chunk.bitOffset + chunk.bits <= result_.size(),
                "chunk beyond the announced result size");
    if (chunk.bits == chunk.page.size()) {
        result_.paste(chunk.bitOffset, chunk.page);
    } else {
        result_.paste(chunk.bitOffset, chunk.page.slice(0, chunk.bits));
    }
}

void
DigestSink::consume(const ResultChunk &chunk)
{
    digest_ = foldChunk(digest_, chunk);
}

std::uint64_t
DigestSink::digestOf(const BitVector &v, std::uint64_t page_bits)
{
    fcos_assert(page_bits > 0, "digestOf needs a page width");
    DigestSink sink;
    std::uint64_t pages = (v.size() + page_bits - 1) / page_bits;
    for (std::uint64_t j = 0; j < pages; ++j) {
        std::uint64_t begin = j * page_bits;
        std::uint64_t len =
            std::min<std::uint64_t>(page_bits, v.size() - begin);
        BitVector page(page_bits, false);
        page.paste(0, v.slice(begin, len));
        sink.consume(ResultChunk{j, begin, len, page});
    }
    return sink.digest();
}

void
PopcountSink::consume(const ResultChunk &chunk)
{
    const std::vector<std::uint64_t> &words = chunk.page.words();
    std::uint64_t full = chunk.bits / 64;
    std::uint64_t ones = 0;
    for (std::uint64_t w = 0; w < full; ++w)
        ones += static_cast<std::uint64_t>(std::popcount(words[w]));
    std::uint64_t tail = chunk.bits % 64;
    if (tail)
        ones += static_cast<std::uint64_t>(
            std::popcount(words[full] & ((1ULL << tail) - 1)));
    ones_ += ones;
    bits_ += chunk.bits;
}

SparseCompareSink
SparseCompareSink::fromImages(
    std::function<nand::PageImage(std::uint64_t)> gen)
{
    return SparseCompareSink(
        [gen = std::move(gen)](std::uint64_t index,
                               std::uint64_t page_bits) -> BitVector {
            return gen(index).materialize(page_bits);
        });
}

void
SparseCompareSink::consume(const ResultChunk &chunk)
{
    BitVector expected = expect_(chunk.index, chunk.page.size());
    fcos_assert(expected.size() >= chunk.bits,
                "expectation narrower than the chunk");
    bool match = true;
    if (expected.size() == chunk.page.size() &&
        chunk.bits == chunk.page.size()) {
        match = (expected == chunk.page);
    } else {
        match = (expected.slice(0, chunk.bits) ==
                 chunk.page.slice(0, chunk.bits));
    }
    ++checked_;
    if (!match) {
        ++mismatched_;
        if (first_mismatch_ == ~std::uint64_t{0})
            first_mismatch_ = chunk.index;
    }
}

void
TeeSink::begin(const StreamShape &shape)
{
    for (ResultSink *s : sinks_)
        s->begin(shape);
}

void
TeeSink::consume(const ResultChunk &chunk)
{
    for (ResultSink *s : sinks_)
        s->consume(chunk);
}

void
TeeSink::end()
{
    for (ResultSink *s : sinks_)
        s->end();
}

} // namespace fcos::core
