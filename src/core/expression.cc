#include "core/expression.h"

#include <algorithm>
#include <set>

#include "util/log.h"

namespace fcos::core {

const char *
bitOpName(BitOp op)
{
    switch (op) {
      case BitOp::Leaf:
        return "LEAF";
      case BitOp::Not:
        return "NOT";
      case BitOp::And:
        return "AND";
      case BitOp::Or:
        return "OR";
      case BitOp::Nand:
        return "NAND";
      case BitOp::Nor:
        return "NOR";
      case BitOp::Xor:
        return "XOR";
      case BitOp::Xnor:
        return "XNOR";
    }
    return "?";
}

Expr
Expr::leaf(VectorId id)
{
    Expr e;
    e.op_ = BitOp::Leaf;
    e.id_ = id;
    e.children_ = std::make_shared<const std::vector<Expr>>();
    return e;
}

Expr
Expr::apply(BitOp op, std::vector<Expr> children)
{
    fcos_assert(op != BitOp::Leaf, "apply() cannot build leaves");
    fcos_assert(!children.empty(), "operator with no operands");
    if (op == BitOp::Not)
        fcos_assert(children.size() == 1, "NOT is unary");
    if (op == BitOp::Xor || op == BitOp::Xnor)
        fcos_assert(children.size() == 2, "XOR/XNOR are binary");
    Expr e;
    e.op_ = op;
    e.children_ =
        std::make_shared<const std::vector<Expr>>(std::move(children));
    return e;
}

std::vector<VectorId>
Expr::leafIds() const
{
    std::set<VectorId> seen;
    std::vector<VectorId> out;
    std::function<void(const Expr &)> walk = [&](const Expr &e) {
        if (e.op() == BitOp::Leaf) {
            if (seen.insert(e.id()).second)
                out.push_back(e.id());
            return;
        }
        for (const Expr &c : e.children())
            walk(c);
    };
    walk(*this);
    return out;
}

BitVector
Expr::evaluate(
    const std::function<const BitVector &(VectorId)> &lookup) const
{
    switch (op_) {
      case BitOp::Leaf:
        return lookup(id_);
      case BitOp::Not:
        return ~children()[0].evaluate(lookup);
      case BitOp::And:
      case BitOp::Nand: {
        BitVector acc = children()[0].evaluate(lookup);
        for (std::size_t i = 1; i < children().size(); ++i)
            acc &= children()[i].evaluate(lookup);
        if (op_ == BitOp::Nand)
            acc.invert();
        return acc;
      }
      case BitOp::Or:
      case BitOp::Nor: {
        BitVector acc = children()[0].evaluate(lookup);
        for (std::size_t i = 1; i < children().size(); ++i)
            acc |= children()[i].evaluate(lookup);
        if (op_ == BitOp::Nor)
            acc.invert();
        return acc;
      }
      case BitOp::Xor:
      case BitOp::Xnor: {
        BitVector acc = children()[0].evaluate(lookup);
        acc ^= children()[1].evaluate(lookup);
        if (op_ == BitOp::Xnor)
            acc.invert();
        return acc;
      }
    }
    fcos_panic("bad op");
}

std::string
Expr::toString() const
{
    if (op_ == BitOp::Leaf)
        return "v" + std::to_string(id_);
    std::string s = bitOpName(op_);
    s += "(";
    for (std::size_t i = 0; i < children().size(); ++i) {
        if (i)
            s += ", ";
        s += children()[i].toString();
    }
    s += ")";
    return s;
}

} // namespace fcos::core
