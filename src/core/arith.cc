#include "core/arith.h"

#include "util/log.h"

namespace fcos::core {

BitSlicedInt
BitSerialEngine::store(const std::vector<std::uint64_t> &values,
                       unsigned width)
{
    fcos_assert(width >= 1 && width <= 64, "width %u out of range",
                width);
    BitSlicedInt reg;
    FlashCosmosDrive::WriteOptions opts;
    opts.group = next_group_++;
    for (unsigned bit = 0; bit < width; ++bit) {
        BitVector slice(values.size());
        for (std::size_t e = 0; e < values.size(); ++e)
            slice.set(e, (values[e] >> bit) & 1);
        reg.slices.push_back(drive_.fcWrite(slice, opts));
    }
    return reg;
}

std::vector<std::uint64_t>
BitSerialEngine::load(const BitSlicedInt &reg)
{
    fcos_assert(!reg.slices.empty(), "empty register");
    std::size_t elements = drive_.vectorBits(reg.slices[0]);
    std::vector<std::uint64_t> out(elements, 0);
    for (unsigned bit = 0; bit < reg.width(); ++bit) {
        BitVector slice = drive_.readVector(reg.slices[bit]);
        for (std::size_t e = 0; e < elements; ++e) {
            if (slice.get(e))
                out[e] |= 1ULL << bit;
        }
    }
    return out;
}

std::pair<BitSlicedInt, BitSlicedInt>
BitSerialEngine::storePair(const std::vector<std::uint64_t> &a,
                           const std::vector<std::uint64_t> &b,
                           unsigned width)
{
    fcos_assert(a.size() == b.size(), "element counts must match");
    fcos_assert(width >= 1 && width <= 64, "width %u out of range",
                width);
    BitSlicedInt ra, rb;
    FlashCosmosDrive::WriteOptions opts;
    opts.group = next_group_++;
    auto slice_of = [&](const std::vector<std::uint64_t> &vals,
                        unsigned bit) {
        BitVector s(vals.size());
        for (std::size_t e = 0; e < vals.size(); ++e)
            s.set(e, (vals[e] >> bit) & 1);
        return s;
    };
    for (unsigned bit = 0; bit < width; ++bit) {
        ra.slices.push_back(drive_.fcWrite(slice_of(a, bit), opts));
        rb.slices.push_back(drive_.fcWrite(slice_of(b, bit), opts));
    }
    return {ra, rb};
}

VectorId
BitSerialEngine::compute(const Expr &expr)
{
    FlashCosmosDrive::WriteOptions opts;
    opts.group = next_group_++;
    FlashCosmosDrive::ReadStats rs;
    VectorId id = drive_.fcCompute(expr, opts, &rs);
    stats_.mwsCommands += rs.mwsCommands;
    stats_.latchXors += rs.latchXors;
    ++stats_.programs;
    stats_.nandTime += rs.nandTime;
    return id;
}

BitSlicedInt
BitSerialEngine::add(const BitSlicedInt &a, const BitSlicedInt &b)
{
    fcos_assert(a.width() == b.width() && a.width() >= 1,
                "operand widths must match");
    BitSlicedInt sum;
    VectorId carry = 0;
    bool have_carry = false;
    for (unsigned i = 0; i < a.width(); ++i) {
        Expr ai = Expr::leaf(a.slices[i]);
        Expr bi = Expr::leaf(b.slices[i]);
        if (!have_carry) {
            // Half adder at the LSB.
            sum.slices.push_back(compute(Expr::Xor(ai, bi)));
            if (i + 1 < a.width()) {
                carry = compute(Expr::And({ai, bi}));
                have_carry = true;
            }
        } else {
            Expr ci = Expr::leaf(carry);
            sum.slices.push_back(
                compute(Expr::Xor(Expr::Xor(ai, bi), ci)));
            if (i + 1 < a.width()) {
                // MAJ(a,b,c) = (a AND b) OR (c AND (a OR b)).
                carry = compute(
                    Expr::Or({Expr::And({ai, bi}),
                              Expr::And({ci, Expr::Or({ai, bi})})}));
            }
        }
    }
    return sum;
}

VectorId
BitSerialEngine::greaterThan(const BitSlicedInt &a, const BitSlicedInt &b)
{
    fcos_assert(a.width() == b.width() && a.width() >= 1,
                "operand widths must match");
    // MSB-first scan with gt / equal-so-far accumulators.
    int msb = static_cast<int>(a.width()) - 1;
    Expr a_m = Expr::leaf(a.slices[static_cast<std::size_t>(msb)]);
    Expr b_m = Expr::leaf(b.slices[static_cast<std::size_t>(msb)]);
    VectorId gt = compute(Expr::And({a_m, Expr::Not(b_m)}));
    if (msb == 0)
        return gt;
    VectorId eq = compute(Expr::Xnor(a_m, b_m));
    for (int i = msb - 1; i >= 0; --i) {
        Expr ai = Expr::leaf(a.slices[static_cast<std::size_t>(i)]);
        Expr bi = Expr::leaf(b.slices[static_cast<std::size_t>(i)]);
        gt = compute(Expr::Or(
            {Expr::leaf(gt),
             Expr::And({Expr::leaf(eq), ai, Expr::Not(bi)})}));
        if (i > 0) {
            // XNOR needs the latch XOR, which cannot nest inside an
            // AND chain — persist it, then fold.
            VectorId xnor_i = compute(Expr::Xnor(ai, bi));
            eq = compute(
                Expr::And({Expr::leaf(eq), Expr::leaf(xnor_i)}));
        }
    }
    return gt;
}

} // namespace fcos::core
