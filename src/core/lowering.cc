#include "core/lowering.h"

#include "util/log.h"

namespace fcos::core {

namespace {

std::vector<LoweredStep>
lowerXor(const MwsPlan &plan, const LoweringContext &ctx)
{
    fcos_assert(plan.xorMembers.size() >= 2, "degenerate XOR plan");
    std::vector<LoweredStep> steps;
    for (std::size_t i = 0; i < plan.xorMembers.size(); ++i) {
        const Literal &l = plan.xorMembers[i];
        bool first_op = (i == 0);
        bool last = (i + 1 == plan.xorMembers.size());
        const nand::WordlineAddr a = ctx.addrOf(l.id);
        bool stored_mismatch =
            ctx.storedInverted(l.id) != l.negated; // stored != literal
        LoweredStep s;
        s.cmd.plane = ctx.plane;
        // The overall parity folds into the last member's sense.
        s.cmd.flags.inverseRead =
            stored_mismatch ^ (last && plan.xorInvert);
        s.cmd.flags.initSenseLatch = true;
        s.cmd.flags.initCacheLatch = first_op;
        s.cmd.flags.dumpToCache = first_op;
        s.cmd.selections.push_back(
            nand::WlSelection{a.block, a.subBlock, 1ULL << a.wordline});
        steps.push_back(std::move(s));
        if (i > 0)
            steps.push_back(LoweredStep{LoweredStep::Kind::LatchXor, {},
                                        false});
    }
    return steps;
}

} // namespace

std::vector<LoweredStep>
lowerPlan(const MwsPlan &plan, const LoweringContext &ctx)
{
    fcos_assert(ctx.addrOf != nullptr, "lowering without address binding");
    if (plan.kind == MwsPlan::Kind::Xor) {
        fcos_assert(ctx.storedInverted != nullptr,
                    "XOR lowering needs storage polarity");
        return lowerXor(plan, ctx);
    }
    fcos_assert(plan.kind == MwsPlan::Kind::Mws,
                "fallback plans have no chip lowering");

    std::vector<LoweredStep> steps;
    for (const PlanCommand &pc : plan.commands) {
        LoweredStep s;
        s.cmd.plane = ctx.plane;
        s.cmd.flags.inverseRead = pc.inverse;
        s.cmd.flags.initSenseLatch = true;
        switch (pc.merge) {
          case MergeMode::Copy:
            s.cmd.flags.initCacheLatch = true;
            s.cmd.flags.dumpToCache = true;
            break;
          case MergeMode::And:
            s.cmd.flags.initCacheLatch = false;
            s.cmd.flags.dumpToCache = true;
            break;
          case MergeMode::Or:
            s.cmd.flags.initCacheLatch = false;
            s.cmd.flags.dumpToCache = false;
            s.orMergeAfter = true;
            break;
        }
        for (const PlanString &str : pc.strings) {
            fcos_assert(!str.members.empty(), "empty plan string");
            const nand::WordlineAddr a0 = ctx.addrOf(str.members[0].id);
            nand::WlSelection sel{a0.block, a0.subBlock, 0};
            for (const Literal &m : str.members) {
                const nand::WordlineAddr a = ctx.addrOf(m.id);
                fcos_assert(a.block == sel.block &&
                                a.subBlock == sel.subBlock,
                            "string members not co-located "
                            "(planner/placement bug)");
                sel.wlMask |= 1ULL << a.wordline;
            }
            s.cmd.selections.push_back(sel);
        }
        steps.push_back(std::move(s));
    }

    if (plan.finalInvert) {
        // Sense the reserved erased wordline (reads all-'1'), then
        // XOR it into the cache latch: C := NOT C.
        fcos_assert(ctx.erasedRef != nullptr,
                    "final NOT requires an erased reference wordline");
        const nand::WordlineAddr &e = *ctx.erasedRef;
        LoweredStep s;
        s.cmd.plane = ctx.plane;
        s.cmd.flags.inverseRead = false;
        s.cmd.flags.initSenseLatch = true;
        s.cmd.flags.initCacheLatch = false;
        s.cmd.flags.dumpToCache = false;
        s.cmd.selections.push_back(
            nand::WlSelection{e.block, e.subBlock, 1ULL << e.wordline});
        steps.push_back(std::move(s));
        steps.push_back(
            LoweredStep{LoweredStep::Kind::LatchXor, {}, false});
    }

    return steps;
}

} // namespace fcos::core
