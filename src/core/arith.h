/**
 * @file
 * Bit-serial arithmetic on top of in-flash bulk bitwise operations
 * (the Section 10 extension: AND/OR/NOT/XOR are logically complete,
 * so frameworks like SIMDRAM / DualityCache synthesize arithmetic
 * from them; this is that idea realized for Flash-Cosmos).
 *
 * Values are stored *bit-sliced*: an n-bit unsigned vector register
 * holding E elements is n stored bit vectors ("slices"), slice i
 * carrying bit i of every element. Addition is a ripple-carry circuit
 * where each level's carry is computed in flash and persisted with
 * program-from-latch (fcCompute), so intermediate data never leaves
 * the dies:
 *
 *   sum_i   = a_i XOR b_i XOR c_i          (latch-XOR chain)
 *   c_{i+1} = MAJ(a_i, b_i, c_i)
 *           = (a_i AND b_i) OR (c_i AND (a_i OR b_i))
 *
 * The comparator runs MSB-first with an "equal-so-far" accumulator:
 *
 *   gt  |= eq AND a_i AND NOT b_i
 *   eq &&= a_i XNOR b_i
 */

#ifndef FCOS_CORE_ARITH_H
#define FCOS_CORE_ARITH_H

#include <cstdint>
#include <utility>
#include <vector>

#include "core/drive.h"

namespace fcos::core {

/** A bit-sliced unsigned integer vector register (LSB slice first). */
struct BitSlicedInt
{
    std::vector<VectorId> slices;

    std::size_t width() const { return slices.size(); }
};

class BitSerialEngine
{
  public:
    /**
     * @param drive          the drive holding operands and scratch
     * @param scratch_group  base placement group for intermediates;
     *                       the engine consumes consecutive ids from
     *                       here
     */
    explicit BitSerialEngine(FlashCosmosDrive &drive,
                             std::uint64_t scratch_group = 1ULL << 40)
        : drive_(drive), next_group_(scratch_group)
    {}

    /** Aggregate cost of all in-flash steps issued so far. */
    struct Stats
    {
        std::uint64_t mwsCommands = 0;
        std::uint64_t latchXors = 0;
        std::uint64_t programs = 0;
        Time nandTime = 0;
    };
    const Stats &stats() const { return stats_; }

    /**
     * Store a host-side array of unsigned values as a bit-sliced
     * register of @p width bits (values are masked to the width).
     */
    BitSlicedInt store(const std::vector<std::uint64_t> &values,
                       unsigned width);

    /**
     * Store two arrays as registers whose slice pairs (a_i, b_i) are
     * co-located in one placement group — the Section 6.3 contract
     * applied to arithmetic: the adder's majority expression then
     * compiles to a three-command chain instead of falling back.
     */
    std::pair<BitSlicedInt, BitSlicedInt>
    storePair(const std::vector<std::uint64_t> &a,
              const std::vector<std::uint64_t> &b, unsigned width);

    /** Read a bit-sliced register back into host-side values. */
    std::vector<std::uint64_t> load(const BitSlicedInt &reg);

    /**
     * Element-wise addition modulo 2^width (widths must match).
     * Every sum and carry slice is computed and persisted in flash.
     */
    BitSlicedInt add(const BitSlicedInt &a, const BitSlicedInt &b);

    /**
     * Element-wise a > b (unsigned): returns the id of a stored mask
     * vector with bit e set where a[e] > b[e].
     */
    VectorId greaterThan(const BitSlicedInt &a, const BitSlicedInt &b);

  private:
    /** fcCompute into a fresh scratch group, tracking stats. */
    VectorId compute(const Expr &expr);

    FlashCosmosDrive &drive_;
    std::uint64_t next_group_;
    Stats stats_;
};

} // namespace fcos::core

#endif // FCOS_CORE_ARITH_H
