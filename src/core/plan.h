/**
 * @file
 * Compiled execution plans for in-flash bulk bitwise operations.
 *
 * A plan is a *chain* of MWS commands executed on one plane's latch
 * pair. Each command senses a set of NAND strings simultaneously
 * (conduction = OR over strings of AND over each string's target
 * wordlines), optionally in inverse mode, and merges the sensed result
 * into the cache latch:
 *
 *   Copy : C := S      (ISCM: init-C + dump — first command)
 *   And  : C := C AND S (ISCM: dump with init-C off, Figure 16)
 *   Or   : C := C OR S  (legacy cache-read transfer path, Figure 6(c),
 *                        the "leverage ParaBit" accumulation of §6.1)
 *
 * The chain structure mirrors the real hardware limit the paper works
 * around: there is exactly one accumulator (the latch pair), so an
 * expression is executable iff it linearizes into single-command
 * factors folded one at a time. XOR/XNOR use the on-chip XOR between
 * the two latches; a final NOT uses the XOR-with-an-erased-wordline
 * trick (an erased page senses as all-'1').
 */

#ifndef FCOS_CORE_PLAN_H
#define FCOS_CORE_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/expression.h"

namespace fcos::core {

/** A vector reference with polarity: value = id or NOT(id). */
struct Literal
{
    VectorId id = 0;
    bool negated = false;

    bool operator==(const Literal &o) const = default;
};

/**
 * One NAND string activation: the *stored* pages of all members are
 * sensed together, contributing AND(stored bits) to the command's
 * conduction. All members must be co-located in one sub-block.
 */
struct PlanString
{
    std::vector<Literal> members;
};

enum class MergeMode : std::uint8_t
{
    Copy, ///< C := S (first command: init-C + dump)
    And,  ///< C := C AND S (Flash-Cosmos accumulate dump)
    Or,   ///< C := C OR S (legacy OR transfer)
};

struct PlanCommand
{
    bool inverse = false;
    MergeMode merge = MergeMode::Copy;
    std::vector<PlanString> strings;

    /** Maximum simultaneously activated strings per command (power
     *  cap from Section 5.2 / Figure 15's four address slots). */
    static constexpr std::size_t kMaxStrings = 4;
};

/** How an expression executes. */
struct MwsPlan
{
    enum class Kind : std::uint8_t
    {
        Mws,      ///< chain of MWS commands
        Xor,      ///< two senses + on-chip XOR
        Fallback, ///< serial page reads + controller-side evaluation
    };

    Kind kind = Kind::Mws;

    // --- Kind::Mws ---
    std::vector<PlanCommand> commands;
    /** Apply NOT at the end (XOR with an erased wordline). */
    bool finalInvert = false;

    // --- Kind::Xor ---
    /** XOR chain members (>= 2): sensed one at a time, folded with the
     *  on-chip latch XOR. Polarity parity (XNOR / negated literals)
     *  folds into the sensing modes. */
    std::vector<Literal> xorMembers;
    /** Complement the overall XOR (folded into the last sense). */
    bool xorInvert = false;

    // --- Kind::Fallback ---
    std::string fallbackReason;

    /** Number of sensing operations the plan performs per page column
     *  (fallback counts one sense per leaf). */
    std::size_t senseCount(std::size_t fallback_leaves = 0) const
    {
        switch (kind) {
          case Kind::Mws:
            return commands.size() + (finalInvert ? 1 : 0);
          case Kind::Xor:
            return 2;
          case Kind::Fallback:
            return fallback_leaves;
        }
        return 0;
    }

    std::string toString() const;
};

} // namespace fcos::core

#endif // FCOS_CORE_PLAN_H
