#include "workloads/workload.h"

#include <cmath>

#include "util/log.h"

namespace fcos::wl {

std::uint64_t
Workload::totalOperandBytes() const
{
    std::uint64_t total = 0;
    for (const auto &b : batches)
        total += b.totalOperands() * b.operandBytes;
    return total;
}

std::uint64_t
Workload::totalResultBytes() const
{
    std::uint64_t total = 0;
    for (const auto &b : batches)
        total += b.operandBytes;
    return total;
}

double
Workload::computedBits() const
{
    return static_cast<double>(totalOperandBytes()) * 8.0;
}

Workload
makeBmi(std::uint32_t months, std::uint64_t users)
{
    fcos_assert(months >= 1, "BMI needs >= 1 month");
    Workload w;
    w.name = "BMI";
    w.paramName = "m";
    w.paramValue = months;
    // Days in the past `months` months: m=1 -> 30 ... m=36 -> 1095.
    std::uint64_t days = static_cast<std::uint64_t>(
        std::floor(months * 365.25 / 12.0));
    OpBatch b;
    b.andOperands = days;
    b.orOperands = 0;
    b.operandBytes = users / 8;
    b.resultToHost = true;
    b.hostPostProcess = true; // bit-count on the host
    w.batches.push_back(b);
    return w;
}

Workload
makeIms(std::uint64_t images)
{
    Workload w;
    w.name = "IMS";
    w.paramName = "I";
    w.paramValue = images;
    OpBatch b;
    b.andOperands = 3; // Y(p,C), U(p,C), V(p,C)
    b.orOperands = 0;
    b.operandBytes = images * 800ULL * 600ULL * 4ULL / 8ULL;
    b.resultToHost = true;
    b.hostPostProcess = false;
    w.batches.push_back(b);
    return w;
}

Workload
makeKcs(std::uint32_t k, std::uint32_t cliques, std::uint64_t vertices)
{
    fcos_assert(k >= 2, "a clique needs >= 2 vertices");
    Workload w;
    w.name = "KCS";
    w.paramName = "k";
    w.paramValue = k;
    OpBatch b;
    b.andOperands = k;  // adjacency vectors of the clique members
    b.orOperands = 1;   // the clique-membership vector
    b.operandBytes = vertices / 8;
    b.resultToHost = true;
    b.hostPostProcess = false;
    w.batches.assign(cliques, b);
    return w;
}

Workload
makeEngineScaling(std::uint64_t and_operands, std::uint64_t operand_bytes)
{
    fcos_assert(and_operands >= 2, "scaling shape needs >= 2 operands");
    Workload w;
    w.name = "SCALE";
    w.paramName = "ops";
    w.paramValue = and_operands;
    OpBatch b;
    b.andOperands = and_operands;
    b.orOperands = 0;
    b.operandBytes = operand_bytes;
    b.resultToHost = true;
    b.hostPostProcess = false;
    w.batches.push_back(b);
    return w;
}

} // namespace fcos::wl
