/**
 * @file
 * The three real-world workloads of the paper's evaluation
 * (Section 7): bitmap index (BMI), image segmentation (IMS), and
 * k-clique star listing (KCS).
 *
 * For the system-level (timing/energy) evaluation a workload is a list
 * of operation batches; each batch combines `andOperands` bit vectors
 * with AND and then ORs in `orOperands` more (the KCS star-formation
 * step). Operand payloads are not materialized at this level — the
 * functional path is exercised by the examples and integration tests
 * at smaller scale (see DESIGN.md "Scale strategy").
 */

#ifndef FCOS_WORKLOADS_WORKLOAD_H
#define FCOS_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace fcos::wl {

struct OpBatch
{
    /** Vectors combined with bitwise AND. */
    std::uint64_t andOperands = 0;
    /** Vectors OR-ed with the AND result afterwards. */
    std::uint64_t orOperands = 0;
    /** Size of each operand (== result) bit vector in bytes. */
    std::uint64_t operandBytes = 0;
    /** Result leaves the SSD toward the host. */
    bool resultToHost = true;
    /** Host post-processes the result (bit-count for BMI). */
    bool hostPostProcess = false;

    std::uint64_t totalOperands() const
    {
        return andOperands + orOperands;
    }
};

struct Workload
{
    std::string name;      ///< "BMI", "IMS", "KCS"
    std::string paramName; ///< "m", "I", "k"
    std::uint64_t paramValue = 0;
    std::vector<OpBatch> batches;

    std::uint64_t totalOperandBytes() const;
    std::uint64_t totalResultBytes() const;
    /** Bits the computation logically touches (Figure 18's numerator). */
    double computedBits() const;
};

/**
 * Bitmap index (Section 7): "how many users were active every day for
 * the past @p months months?" — AND of one daily 1-bit-per-user vector
 * per day, then a host-side bit-count. 800M users => 100-MB vectors;
 * operands range from 30 (m=1) to 1095 (m=36).
 */
Workload makeBmi(std::uint32_t months, std::uint64_t users = 800000000ULL);

/**
 * Image segmentation: AND of the three YUV membership bit vectors over
 * @p images 800x600 images with 4 colors.
 */
Workload makeIms(std::uint64_t images);

/**
 * K-clique star listing: for each of @p cliques k-cliques over a
 * @p vertices-vertex graph, AND the k member adjacency vectors and OR
 * in the clique-membership vector.
 */
Workload makeKcs(std::uint32_t k, std::uint32_t cliques = 1024,
                 std::uint64_t vertices = 32000000ULL);

/**
 * Weak-scaling shape for the multi-die compute engine: one bulk AND
 * batch whose operand size grows with the farm so that every die holds
 * @p pages_per_column result pages regardless of die count. The
 * engine-scaling bench and its golden test run this shape across
 * channel x die configurations.
 *
 * @param and_operands     vectors folded with AND (<= one NAND string)
 * @param operand_bytes    size of each operand (== result) vector
 */
Workload makeEngineScaling(std::uint64_t and_operands,
                           std::uint64_t operand_bytes);

} // namespace fcos::wl

#endif // FCOS_WORKLOADS_WORKLOAD_H
