/**
 * @file
 * In-storage processing (ISP) accelerator — the per-channel bitwise
 * engine baseline (paper Section 7: "simple bitwise logic and a
 * 256-KiB SRAM buffer" in the SSD controller).
 *
 * The functional model streams pages from the dies and folds them into
 * an SRAM-resident accumulator; only the final result leaves the SSD.
 * Its timing/energy behaviour in the system evaluation is modelled by
 * SsdSim::accelCompute (channel-rate streaming, 93 pJ per 64-B op).
 */

#ifndef FCOS_ISP_ACCELERATOR_H
#define FCOS_ISP_ACCELERATOR_H

#include <cstdint>

#include "util/bitvector.h"

namespace fcos::isp {

enum class AccelOp : std::uint8_t
{
    And,
    Or,
    Xor,
};

class IspAccelerator
{
  public:
    /** @param sram_bytes  accumulator capacity (Table 1: 256 KiB). */
    explicit IspAccelerator(std::size_t sram_bytes = 256 * 1024)
        : sram_bytes_(sram_bytes)
    {}

    std::size_t sramBytes() const { return sram_bytes_; }

    /**
     * Start a new accumulation of @p result_bits bits. Fatal if the
     * result does not fit in SRAM — larger results must be processed
     * in tiles, which is what the platform driver does.
     */
    void begin(AccelOp op, std::size_t result_bits);

    /** Fold one operand tile into the accumulator. */
    void consume(const BitVector &tile);

    /** Number of tiles folded since begin(). */
    std::uint64_t tilesConsumed() const { return tiles_; }

    /** Finished accumulator value. */
    const BitVector &result() const { return acc_; }

  private:
    std::size_t sram_bytes_;
    AccelOp op_ = AccelOp::And;
    BitVector acc_;
    std::uint64_t tiles_ = 0;
    bool first_ = true;
};

} // namespace fcos::isp

#endif // FCOS_ISP_ACCELERATOR_H
