#include "isp/accelerator.h"

#include "util/log.h"

namespace fcos::isp {

void
IspAccelerator::begin(AccelOp op, std::size_t result_bits)
{
    fcos_assert(result_bits > 0, "empty accumulation");
    if (result_bits > sram_bytes_ * 8) {
        fcos_fatal("ISP result tile of %zu bits exceeds the %zu-KiB "
                   "SRAM buffer; split the operation into tiles",
                   result_bits, sram_bytes_ / 1024);
    }
    op_ = op;
    acc_ = BitVector(result_bits, false);
    tiles_ = 0;
    first_ = true;
}

void
IspAccelerator::consume(const BitVector &tile)
{
    fcos_assert(tile.size() == acc_.size(),
                "tile size %zu != accumulator size %zu", tile.size(),
                acc_.size());
    if (first_) {
        acc_ = tile;
        first_ = false;
    } else {
        switch (op_) {
          case AccelOp::And:
            acc_ &= tile;
            break;
          case AccelOp::Or:
            acc_ |= tile;
            break;
          case AccelOp::Xor:
            acc_ ^= tile;
            break;
        }
    }
    ++tiles_;
}

} // namespace fcos::isp
