/**
 * @file
 * ParaBit (MICRO'21) — the state-of-the-art in-flash processing
 * baseline (paper Section 3.1, Figure 6).
 *
 * ParaBit performs bulk bitwise operations by *serially* sensing one
 * operand wordline at a time with regular reads and accumulating in
 * the latch pair:
 *
 *  - AND: sense each operand without re-initializing the sensing
 *    latch; evaluation can only pull OUT_S down, so S accumulates the
 *    conjunction (Fig. 6(b)); the result moves to the cache latch at
 *    the end.
 *  - OR: initialize the cache latch once, then for each operand
 *    (re-initialized sense + M3 transfer) the cache latch accumulates
 *    the disjunction (Fig. 6(c)).
 *
 * Every operand costs one full tR sensing operation — the bottleneck
 * Flash-Cosmos's MWS removes. ParaBit also reads raw cell data, so it
 * inherits the full RBER of the programming mode used (no ECC, no
 * randomization), which Section 3.2 quantifies.
 */

#ifndef FCOS_PARABIT_PARABIT_H
#define FCOS_PARABIT_PARABIT_H

#include <cstdint>
#include <vector>

#include "nand/chip.h"
#include "nand/geometry.h"

namespace fcos::pb {

class ParaBitEngine
{
  public:
    explicit ParaBitEngine(nand::NandChip &chip) : chip_(chip) {}

    /**
     * Bitwise AND of the given wordlines (all in one plane), by serial
     * sensing with S-latch accumulation. Result lands in the cache
     * latch; returns the summed latency/energy of all operations.
     */
    nand::OpResult bulkAnd(const std::vector<nand::WordlineAddr> &operands);

    /**
     * Bitwise OR of the given wordlines by serial sensing with C-latch
     * accumulation. Result lands in the cache latch.
     */
    nand::OpResult bulkOr(const std::vector<nand::WordlineAddr> &operands);

    /** Result of the last bulk operation (the plane's cache latch). */
    const BitVector &result(std::uint32_t plane) const
    {
        return chip_.dataOut(plane);
    }

    /** Sensing operations performed since construction. */
    std::uint64_t senseCount() const { return senses_; }

  private:
    std::uint32_t commonPlane(
        const std::vector<nand::WordlineAddr> &operands) const;

    nand::NandChip &chip_;
    std::uint64_t senses_ = 0;
};

} // namespace fcos::pb

#endif // FCOS_PARABIT_PARABIT_H
