#include "parabit/parabit.h"

#include "util/log.h"

namespace fcos::pb {

std::uint32_t
ParaBitEngine::commonPlane(
    const std::vector<nand::WordlineAddr> &operands) const
{
    fcos_assert(!operands.empty(), "ParaBit needs at least one operand");
    std::uint32_t plane = operands[0].plane;
    for (const auto &a : operands)
        fcos_assert(a.plane == plane,
                    "ParaBit operands must share a plane (bitlines)");
    return plane;
}

nand::OpResult
ParaBitEngine::bulkAnd(const std::vector<nand::WordlineAddr> &operands)
{
    std::uint32_t plane = commonPlane(operands);
    nand::OpResult total;
    for (std::size_t i = 0; i < operands.size(); ++i) {
        // First sense initializes the latch; later senses accumulate
        // (Fig. 6(b): no re-initialization, no M3).
        nand::OpResult op =
            chip_.senseParaBit(operands[i], i == 0, false);
        total.latency += op.latency;
        total.energyJ += op.energyJ;
        ++senses_;
    }
    chip_.dumpCopy(plane); // move the result to the cache latch
    return total;
}

nand::OpResult
ParaBitEngine::bulkOr(const std::vector<nand::WordlineAddr> &operands)
{
    std::uint32_t plane = commonPlane(operands);
    chip_.initCache(plane); // C := 0, the OR identity
    nand::OpResult total;
    for (const auto &a : operands) {
        // Fig. 6(c): re-initialized sense, then M3 OR-merges into C.
        nand::OpResult op = chip_.senseParaBit(a, true, true);
        total.latency += op.latency;
        total.energyJ += op.energyJ;
        ++senses_;
    }
    return total;
}

} // namespace fcos::pb
