/**
 * @file
 * Observability session: the process-wide Tracer + metrics Registry,
 * the enable/disable knobs, and the epoch guard that makes disabled
 * hooks cost a single predictable branch.
 *
 * ## Enabling
 * Three equivalent paths converge here:
 *  - env knobs `FCOS_TRACE=<file>` / `FCOS_METRICS=<file>` (read once
 *    at startup; files are written at process exit),
 *  - `Config::traceFile` / `Config::metricsFile` on FlashCosmosDrive
 *    (calls enableTrace()/enableMetrics() at construction),
 *  - programmatic ScopedCapture for tests and benches that want the
 *    trace/metrics in memory instead of on disk.
 *
 * ## The epoch guard
 * Instrumented components capture `traceEpoch()` / `metricsEpoch()`
 * once (at construction) together with their track ids or metric
 * handles. Every hot-path hook then reduces to
 *
 *     if (obs::traceLive(epoch_)) { ... }
 *
 * — one relaxed atomic load plus a compare. Epoch 0 means "off", and
 * the counter bumps on every enable/disable/session swap, so a handle
 * cached against an old session can never be used against a new one
 * (the stale epoch no longer matches). That is what lets components
 * hold raw `Counter*` / track-id handles with zero locking.
 *
 * ## Determinism
 * Recording happens only in serial simulation contexts, so for a fixed
 * workload the trace JSON — and Tracer::digest() — is bit-identical
 * at any worker count. Metrics mixing in host time use the "host."
 * name prefix and are excluded from the deterministic render.
 */

#ifndef FCOS_OBS_OBS_H
#define FCOS_OBS_OBS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fcos::obs {

namespace detail {
extern std::atomic<std::uint64_t> g_trace_epoch;
extern std::atomic<std::uint64_t> g_metrics_epoch;
} // namespace detail

/** Current trace epoch; 0 when tracing is off. Capture at component
 *  construction and gate hooks with traceLive(). */
inline std::uint64_t
traceEpoch()
{
    return detail::g_trace_epoch.load(std::memory_order_relaxed);
}

inline std::uint64_t
metricsEpoch()
{
    return detail::g_metrics_epoch.load(std::memory_order_relaxed);
}

inline bool traceOn() { return traceEpoch() != 0; }
inline bool metricsOn() { return metricsEpoch() != 0; }

/** True iff tracing is on *and* still the same session the caller
 *  captured @p epoch from. The single-branch disabled-path check. */
inline bool
traceLive(std::uint64_t epoch)
{
    return epoch != 0 && traceEpoch() == epoch;
}

inline bool
metricsLive(std::uint64_t epoch)
{
    return epoch != 0 && metricsEpoch() == epoch;
}

/** The active tracer / registry. Valid only while the corresponding
 *  epoch is non-zero; call sites must check first. */
Tracer &trace();
Registry &metrics();

/** Turn tracing/metrics on, writing to @p path at exportNow() (empty
 *  path: capture in memory only). Restarts the session (fresh buffers,
 *  new epoch) if already on. */
void enableTrace(const std::string &path);
void enableMetrics(const std::string &path);

/** Turn both off and drop buffered data (after exporting, callers that
 *  want the files call exportNow() first). */
void disableAll();

/** Read FCOS_TRACE / FCOS_METRICS and enable accordingly; registers an
 *  atexit hook that exports to the named files. Idempotent; runs
 *  automatically before main() but is safe to call again. */
void initFromEnv();

/** Write the trace JSON / metrics report to their configured paths
 *  now (no-op for sessions without a path). */
void exportNow();

/** Render the active registry's full report ("" when metrics off). */
std::string metricsReport();

/**
 * RAII capture for tests and benches: swaps in a fresh Tracer and/or
 * Registry (bumping the epochs) and restores the previous session on
 * destruction. Components constructed inside the scope record into the
 * scoped buffers; components from outside hold stale epochs and go
 * quiet — exactly the isolation a determinism test wants.
 */
class ScopedCapture
{
  public:
    explicit ScopedCapture(bool trace = true, bool metrics = true);
    ~ScopedCapture();

    ScopedCapture(const ScopedCapture &) = delete;
    ScopedCapture &operator=(const ScopedCapture &) = delete;

    Tracer &tracer();
    Registry &metricsRegistry();

    std::string traceJson() const;
    std::uint64_t traceDigest() const;
    std::string metricsText() const;

  private:
    std::unique_ptr<Tracer> prev_tracer_;
    std::unique_ptr<Registry> prev_registry_;
    std::string prev_trace_path_;
    std::string prev_metrics_path_;
    std::uint64_t prev_trace_epoch_ = 0;
    std::uint64_t prev_metrics_epoch_ = 0;
    bool trace_;
    bool metrics_;
};

} // namespace fcos::obs

#endif // FCOS_OBS_OBS_H
