/**
 * @file
 * Metrics registry: named monotonic counters, gauges, and fixed
 * log2-bucket latency histograms.
 *
 * The registry is the numerical half of the observability layer
 * (obs/obs.h): components record what happened — events queued, op
 * latencies, chunk emissions, facility busy time — and the end-of-run
 * report renders everything through util::table.
 *
 * Threading contract: metric *registration* (counter()/gauge()/
 * histogram()/recordFacility()) and Gauge/Histogram updates happen
 * only in serial simulation contexts (construction, the event queue's
 * commit phase, drain). Counter::add is a relaxed atomic so worker
 * threads (WorkerPool lanes) may bump counters concurrently — the one
 * cross-thread update the layer permits.
 *
 * Naming convention: metrics derived from *host* wall-clock time are
 * prefixed "host." — they vary run to run and are excluded from
 * renderDeterministic(), which golden tests pin. Everything else is a
 * pure function of the simulated workload and is bit-stable.
 */

#ifndef FCOS_OBS_METRICS_H
#define FCOS_OBS_METRICS_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/units.h"

namespace fcos::obs {

/** Monotonic event counter (relaxed-atomic: safe from worker lanes). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value gauge with a high-water mark (serial contexts only). */
class Gauge
{
  public:
    void set(double v)
    {
        value_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Keep only the maximum ever observed. */
    void noteMax(double v)
    {
        if (v > max_)
            max_ = v;
        value_ = max_;
    }

    double value() const { return value_; }
    double max() const { return max_; }

  private:
    double value_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed log2-bucket histogram for latency/size distributions. Bucket b
 * holds values in [2^(b-1), 2^b); bucket 0 holds zero. Quantiles are
 * bucket upper bounds — coarse, but allocation-free, O(1) to record,
 * and bit-deterministic (what golden snapshots need).
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 65;

    void record(std::uint64_t v)
    {
        ++buckets_[v == 0 ? 0 : std::bit_width(v)];
        ++count_;
        sum_ += v;
        if (v < min_ || count_ == 1)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Upper bound of the bucket where cumulative count reaches
     *  @p q (0 < q <= 1); 0 for an empty histogram. */
    std::uint64_t quantile(double q) const;

    std::uint64_t bucket(int b) const { return buckets_[b]; }

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** One serialized resource's cumulative occupancy (set at drain). */
struct FacilityUse
{
    Time busy = 0;          ///< accumulated busy time (simulated)
    std::uint64_t grants = 0;
    Time span = 0;          ///< timeline span the busy time lives in
};

class Registry
{
  public:
    /** Find-or-create by name; references stay valid for the
     *  registry's lifetime (values are heap-allocated). */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Overwrite a facility's cumulative utilization (idempotent per
     *  drain; later drains carry larger busy/span values). */
    void recordFacility(const std::string &name, Time busy,
                        std::uint64_t grants, Time span);

    bool empty() const
    {
        return counters_.empty() && gauges_.empty() &&
               histograms_.empty() && facilities_.empty();
    }

    /** Full end-of-run report (all tables, incl. host.* metrics). */
    std::string renderReport() const;

    /**
     * Report restricted to simulation-deterministic metrics: host.*
     * names are dropped, gauges render max-only. This is the string
     * golden tests pin.
     */
    std::string renderDeterministic() const;

    /** Facility-utilization table alone, top @p n by busy time —
     *  the CI job summary's excerpt. */
    std::string renderFacilityTable(std::size_t n) const;

  private:
    std::string render(bool include_host) const;

    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, FacilityUse> facilities_;
};

} // namespace fcos::obs

#endif // FCOS_OBS_METRICS_H
