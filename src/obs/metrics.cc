#include "obs/metrics.h"

#include <algorithm>
#include <vector>

#include "util/table.h"

namespace fcos::obs {

std::uint64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    const double target = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += buckets_[b];
        if (static_cast<double>(seen) >= target) {
            if (b == 0)
                return 0;
            if (b >= 64)
                return max_;
            // Upper bound of bucket b, clamped to the observed max.
            return std::min<std::uint64_t>(max_, (1ULL << b) - 1);
        }
    }
    return max_;
}

Counter &
Registry::counter(const std::string &name)
{
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
Registry::recordFacility(const std::string &name, Time busy,
                         std::uint64_t grants, Time span)
{
    facilities_[name] = FacilityUse{busy, grants, span};
}

namespace {

bool
isHostMetric(const std::string &name)
{
    return name.rfind("host.", 0) == 0;
}

std::string
fmtU64(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace

std::string
Registry::renderFacilityTable(std::size_t n) const
{
    std::vector<std::pair<std::string, FacilityUse>> rows(
        facilities_.begin(), facilities_.end());
    // Busiest first; name breaks ties so the order is deterministic.
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        if (a.second.busy != b.second.busy)
            return a.second.busy > b.second.busy;
        return a.first < b.first;
    });
    if (rows.size() > n)
        rows.resize(n);

    TablePrinter t("facility utilization (top " + std::to_string(n) +
                   " by busy time)");
    t.setHeader({"facility", "busy", "grants", "util%"});
    for (const auto &[name, use] : rows) {
        double util = use.span
                          ? 100.0 * static_cast<double>(use.busy) /
                                static_cast<double>(use.span)
                          : 0.0;
        t.addRow({name, formatTime(use.busy), fmtU64(use.grants),
                  TablePrinter::cell(util, 1)});
    }
    return t.toString();
}

std::string
Registry::render(bool include_host) const
{
    std::string out;

    if (!counters_.empty()) {
        TablePrinter t("counters");
        t.setHeader({"name", "value"});
        for (const auto &[name, c] : counters_) {
            if (!include_host && isHostMetric(name))
                continue;
            t.addRow({name, fmtU64(c->value())});
        }
        out += t.toString();
        out += "\n";
    }

    if (!gauges_.empty()) {
        TablePrinter t("gauges");
        t.setHeader({"name", "value", "max"});
        for (const auto &[name, g] : gauges_) {
            if (!include_host && isHostMetric(name))
                continue;
            // The deterministic view keeps only the high-water mark:
            // "value" is whatever the last drain happened to set.
            t.addRow({name,
                      include_host ? TablePrinter::cell(g->value(), 1)
                                   : TablePrinter::cell(g->max(), 1),
                      TablePrinter::cell(g->max(), 1)});
        }
        out += t.toString();
        out += "\n";
    }

    if (!histograms_.empty()) {
        TablePrinter t("histograms (log2 buckets)");
        t.setHeader({"name", "count", "min", "max", "mean", "p50",
                     "p99"});
        for (const auto &[name, h] : histograms_) {
            if (!include_host && isHostMetric(name))
                continue;
            t.addRow({name, fmtU64(h->count()), fmtU64(h->min()),
                      fmtU64(h->max()), TablePrinter::cell(h->mean(), 1),
                      fmtU64(h->quantile(0.5)),
                      fmtU64(h->quantile(0.99))});
        }
        out += t.toString();
        out += "\n";
    }

    if (!facilities_.empty())
        out += renderFacilityTable(10);

    return out;
}

std::string
Registry::renderReport() const
{
    return render(/*include_host=*/true);
}

std::string
Registry::renderDeterministic() const
{
    return render(/*include_host=*/false);
}

} // namespace fcos::obs
