#include "obs/trace.h"

#include "util/log.h"

namespace fcos::obs {

std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint32_t
Tracer::newProcess(std::string name)
{
    processes_.push_back(std::move(name));
    next_tid_.push_back(0);
    return static_cast<std::uint32_t>(processes_.size() - 1);
}

std::uint32_t
Tracer::newTrack(std::uint32_t pid, std::string name)
{
    fcos_assert(pid < processes_.size(), "track under unknown pid %u",
                pid);
    tracks_.push_back(Track{pid, next_tid_[pid]++, std::move(name), {}});
    return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void
Tracer::span(std::uint32_t track, const char *name, Time begin, Time end)
{
    if (track >= tracks_.size())
        return; // stale handle from a previous session: drop
    fcos_assert(begin <= end, "span ends before it begins");
    tracks_[track].events.push_back(Event{name, begin, end, false});
    ++events_;
}

void
Tracer::overlay(std::uint32_t track, const char *name, Time begin,
                Time end)
{
    if (track >= tracks_.size())
        return;
    fcos_assert(begin <= end, "overlay ends before it begins");
    tracks_[track].events.push_back(Event{name, begin, end, true});
    ++events_;
}

namespace {

/** trace_event "ts" is microseconds; print at ns resolution. */
void
appendTs(std::string &out, Time ns)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  (unsigned long long)(ns / 1000),
                  (unsigned long long)(ns % 1000));
    out += buf;
}

} // namespace

std::string
Tracer::toJson() const
{
    std::string out;
    out.reserve(128 + events_ * 72);
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };

    for (std::uint32_t pid = 0; pid < processes_.size(); ++pid) {
        sep();
        out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
        out += std::to_string(pid);
        out += ",\"tid\":0,\"args\":{\"name\":\"";
        out += processes_[pid];
        out += "\"}}";
    }
    for (const Track &t : tracks_) {
        sep();
        out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
        out += std::to_string(t.pid);
        out += ",\"tid\":";
        out += std::to_string(t.tid);
        out += ",\"args\":{\"name\":\"";
        out += t.name;
        out += "\"}}";
    }

    for (const Track &t : tracks_) {
        const std::string ids = ",\"pid\":" + std::to_string(t.pid) +
                                ",\"tid\":" + std::to_string(t.tid);
        for (const Event &e : t.events) {
            sep();
            if (e.complete) {
                out += "{\"ph\":\"X\",\"name\":\"";
                out += e.name;
                out += "\"";
                out += ids;
                out += ",\"ts\":";
                appendTs(out, e.begin);
                out += ",\"dur\":";
                appendTs(out, e.end - e.begin);
                out += "}";
            } else {
                out += "{\"ph\":\"B\",\"name\":\"";
                out += e.name;
                out += "\"";
                out += ids;
                out += ",\"ts\":";
                appendTs(out, e.begin);
                out += "}";
                sep();
                out += "{\"ph\":\"E\"";
                out += ids;
                out += ",\"ts\":";
                appendTs(out, e.end);
                out += "}";
            }
        }
    }
    out += "\n]}\n";
    return out;
}

std::uint64_t
Tracer::digest() const
{
    return fnv1a(toJson());
}

bool
Tracer::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string json = toJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace fcos::obs
