#include "obs/obs.h"

#include <cstdlib>

#include "util/log.h"

namespace fcos::obs {

namespace detail {
std::atomic<std::uint64_t> g_trace_epoch{0};
std::atomic<std::uint64_t> g_metrics_epoch{0};
} // namespace detail

namespace {

struct Session
{
    std::unique_ptr<Tracer> tracer;
    std::unique_ptr<Registry> registry;
    std::string trace_path;
    std::string metrics_path;
    std::uint64_t next_epoch = 1; ///< never reused across the process
};

/** Leaked on purpose: the atexit export hook and components destroyed
 *  during static teardown may still reach the session. */
Session &
session()
{
    static Session *s = new Session;
    return *s;
}

void
exportAtExit()
{
    exportNow();
}

/** Register the exit-time export once, on the first enable that names
 *  an output file (env knob or Config field alike). */
void
registerExportHook(const std::string &path)
{
    static bool registered = false;
    if (path.empty() || registered)
        return;
    registered = true;
    std::atexit(exportAtExit);
}

} // namespace

Tracer &
trace()
{
    fcos_assert(traceOn(), "obs::trace() while tracing is off");
    return *session().tracer;
}

Registry &
metrics()
{
    fcos_assert(metricsOn(), "obs::metrics() while metrics are off");
    return *session().registry;
}

void
enableTrace(const std::string &path)
{
    Session &s = session();
    s.tracer = std::make_unique<Tracer>();
    s.trace_path = path;
    registerExportHook(path);
    detail::g_trace_epoch.store(s.next_epoch++,
                                std::memory_order_relaxed);
}

void
enableMetrics(const std::string &path)
{
    Session &s = session();
    s.registry = std::make_unique<Registry>();
    s.metrics_path = path;
    registerExportHook(path);
    detail::g_metrics_epoch.store(s.next_epoch++,
                                  std::memory_order_relaxed);
}

void
disableAll()
{
    Session &s = session();
    detail::g_trace_epoch.store(0, std::memory_order_relaxed);
    detail::g_metrics_epoch.store(0, std::memory_order_relaxed);
    s.tracer.reset();
    s.registry.reset();
    s.trace_path.clear();
    s.metrics_path.clear();
}

void
initFromEnv()
{
    static bool done = false;
    if (done)
        return;
    done = true;

    const char *trace_path = std::getenv("FCOS_TRACE");
    const char *metrics_path = std::getenv("FCOS_METRICS");
    if (trace_path && *trace_path)
        enableTrace(trace_path);
    if (metrics_path && *metrics_path)
        enableMetrics(metrics_path);
}

namespace {
// Runs before main(): env knobs work without any code in the binary.
const bool g_env_init = [] {
    initFromEnv();
    return true;
}();
} // namespace

void
exportNow()
{
    Session &s = session();
    if (traceOn() && !s.trace_path.empty()) {
        if (!s.tracer->writeFile(s.trace_path))
            fcos_warn("failed to write trace to %s",
                      s.trace_path.c_str());
        else
            fcos_inform("trace: %llu events on %zu tracks -> %s "
                        "(digest %016llx)",
                        (unsigned long long)s.tracer->events(),
                        s.tracer->tracks(),
                        s.trace_path.c_str(),
                        (unsigned long long)s.tracer->digest());
    }
    if (metricsOn() && !s.metrics_path.empty()) {
        std::FILE *f = std::fopen(s.metrics_path.c_str(), "w");
        if (!f) {
            fcos_warn("failed to write metrics to %s",
                      s.metrics_path.c_str());
            return;
        }
        const std::string report = s.registry->renderReport();
        std::fwrite(report.data(), 1, report.size(), f);
        std::fclose(f);
        fcos_inform("metrics report -> %s", s.metrics_path.c_str());
    }
}

std::string
metricsReport()
{
    return metricsOn() ? session().registry->renderReport()
                       : std::string();
}

ScopedCapture::ScopedCapture(bool trace, bool metrics)
    : trace_(trace), metrics_(metrics)
{
    Session &s = session();
    if (trace_) {
        prev_tracer_ = std::move(s.tracer);
        prev_trace_path_ = std::move(s.trace_path);
        prev_trace_epoch_ =
            detail::g_trace_epoch.load(std::memory_order_relaxed);
        s.tracer = std::make_unique<Tracer>();
        s.trace_path.clear();
        detail::g_trace_epoch.store(s.next_epoch++,
                                    std::memory_order_relaxed);
    }
    if (metrics_) {
        prev_registry_ = std::move(s.registry);
        prev_metrics_path_ = std::move(s.metrics_path);
        prev_metrics_epoch_ =
            detail::g_metrics_epoch.load(std::memory_order_relaxed);
        s.registry = std::make_unique<Registry>();
        s.metrics_path.clear();
        detail::g_metrics_epoch.store(s.next_epoch++,
                                      std::memory_order_relaxed);
    }
}

ScopedCapture::~ScopedCapture()
{
    Session &s = session();
    if (trace_) {
        s.tracer = std::move(prev_tracer_);
        s.trace_path = std::move(prev_trace_path_);
        detail::g_trace_epoch.store(prev_trace_epoch_,
                                    std::memory_order_relaxed);
    }
    if (metrics_) {
        s.registry = std::move(prev_registry_);
        s.metrics_path = std::move(prev_metrics_path_);
        detail::g_metrics_epoch.store(prev_metrics_epoch_,
                                      std::memory_order_relaxed);
    }
}

Tracer &
ScopedCapture::tracer()
{
    fcos_assert(trace_, "ScopedCapture without tracing");
    return *session().tracer;
}

Registry &
ScopedCapture::metricsRegistry()
{
    fcos_assert(metrics_, "ScopedCapture without metrics");
    return *session().registry;
}

std::string
ScopedCapture::traceJson() const
{
    return session().tracer->toJson();
}

std::uint64_t
ScopedCapture::traceDigest() const
{
    return session().tracer->digest();
}

std::string
ScopedCapture::metricsText() const
{
    return session().registry->renderDeterministic();
}

} // namespace fcos::obs
