/**
 * @file
 * Span tracer producing Chrome trace_event JSON (Perfetto-loadable).
 *
 * Tracks mirror the simulator's hardware hierarchy: each channel is a
 * trace *process* (pid) whose *threads* (tids) are the channel bus,
 * the accelerator port, and the (die, plane) facilities behind it; the
 * drive itself is one more process carrying the request track and the
 * external link. Timestamps are **simulated** nanoseconds (exported as
 * fractional microseconds, the trace_event unit), so a timeline shows
 * where simulated time goes — never host scheduling noise.
 *
 * Two span flavours:
 *  - span():    a B/E pair on a serialized track. Callers guarantee
 *               spans of one track never overlap (true for Facility
 *               bookings — FIFO, non-overlapping by construction);
 *  - overlay(): an X (complete) event for intervals that may overlap
 *               on their track, e.g. queue-wait windows of ops stacked
 *               behind one plane.
 *
 * Recording happens only in serial simulation contexts (construction
 * and the event queue's commit phase), so the event stream — and the
 * digest of the exported JSON — is bit-identical for any worker count.
 * Span names must be string literals (or otherwise outlive the
 * tracer): only the pointer is stored.
 */

#ifndef FCOS_OBS_TRACE_H
#define FCOS_OBS_TRACE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/units.h"

namespace fcos::obs {

class Tracer
{
  public:
    /** Register a trace process; @return its pid. */
    std::uint32_t newProcess(std::string name);

    /** Register a track (thread) under @p pid; @return the track id
     *  used by span()/overlay(). Tids are assigned in registration
     *  order within the process. */
    std::uint32_t newTrack(std::uint32_t pid, std::string name);

    /** Record a serialized occupancy [begin, end] as a B/E pair.
     *  Per track, calls must arrive with non-decreasing @p begin and
     *  begin >= the previous span's end. */
    void span(std::uint32_t track, const char *name, Time begin,
              Time end);

    /** Record a possibly-overlapping interval as an X event. Per
     *  track, calls must arrive with non-decreasing @p begin. */
    void overlay(std::uint32_t track, const char *name, Time begin,
                 Time end);

    std::uint64_t events() const { return events_; }
    std::size_t tracks() const { return tracks_.size(); }

    /** Serialize as Chrome trace_event JSON (one event per line). */
    std::string toJson() const;

    /** FNV-1a digest of toJson() — the determinism certificate. */
    std::uint64_t digest() const;

    /** Write toJson() to @p path; @return success. */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        const char *name;
        Time begin;
        Time end;
        bool complete; ///< X event instead of a B/E pair
    };

    struct Track
    {
        std::uint32_t pid;
        std::uint32_t tid;
        std::string name;
        std::vector<Event> events;
    };

    std::vector<std::string> processes_; ///< index == pid
    std::vector<std::uint32_t> next_tid_;
    std::vector<Track> tracks_;
    std::uint64_t events_ = 0;
};

/** FNV-1a over a byte string (shared with core::DigestSink's scheme). */
std::uint64_t fnv1a(const std::string &bytes);

} // namespace fcos::obs

#endif // FCOS_OBS_TRACE_H
