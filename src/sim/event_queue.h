/**
 * @file
 * Deterministic discrete-event simulation engine.
 *
 * The engine is deliberately minimal: a time-ordered queue of callbacks
 * with FIFO tie-breaking at equal timestamps, which makes every run
 * bit-reproducible. Components (dies, channels, links) are modelled as
 * Facility objects — serialized resources with an "available at" time —
 * which is the same modelling level MQSim uses for bus and die
 * contention.
 */

#ifndef FCOS_SIM_EVENT_QUEUE_H
#define FCOS_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "util/units.h"

namespace fcos {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Time now() const { return now_; }

    /** Schedule @p cb at absolute time @p when (must be >= now()). */
    void schedule(Time when, Callback cb);

    /** Schedule @p cb @p delta after now(). */
    void scheduleAfter(Time delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** Execute the earliest event. @return false if the queue is empty. */
    bool runOne();

    /** Run until no events remain. */
    void run();

    /**
     * Run until simulated time would exceed @p deadline; events at
     * exactly @p deadline still execute. @return the final now().
     */
    Time runUntil(Time deadline);

    /** Number of events waiting. */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed (for engine microbenchmarks). */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        Time when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

/**
 * A serialized resource (bus, link, die plane, accelerator port).
 *
 * acquire(now, duration) books the next free slot of the resource and
 * returns the completion time; callers schedule their continuation
 * there. Requests are served in the order acquire() is called, which —
 * because the event queue is deterministic — yields FIFO service in
 * arrival order.
 */
class Facility
{
  public:
    explicit Facility(std::string name = "") : name_(std::move(name)) {}

    /**
     * Book the resource for @p duration starting no earlier than @p now.
     * @return completion time of this booking.
     */
    Time acquire(Time now, Time duration)
    {
        Time start = std::max(now, ready_);
        ready_ = start + duration;
        busy_ += duration;
        ++grants_;
        return ready_;
    }

    /** Earliest time a new booking could start. */
    Time readyAt() const { return ready_; }

    /** Accumulated busy time (for utilization reports). */
    Time busyTime() const { return busy_; }

    /** Number of grants served. */
    std::uint64_t grants() const { return grants_; }

    const std::string &name() const { return name_; }

    /** Forget all bookings (fresh run). */
    void reset()
    {
        ready_ = 0;
        busy_ = 0;
        grants_ = 0;
    }

  private:
    std::string name_;
    Time ready_ = 0;
    Time busy_ = 0;
    std::uint64_t grants_ = 0;
};

} // namespace fcos

#endif // FCOS_SIM_EVENT_QUEUE_H
