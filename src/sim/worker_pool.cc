#include "sim/worker_pool.h"

#include <chrono>
#include <cstdlib>

#include "util/log.h"

namespace fcos {

namespace {

std::uint32_t
envWorkerDefault()
{
    static const std::uint32_t value = [] {
        const char *s = std::getenv("FCOS_WORKERS");
        if (!s || !*s)
            return 1u;
        long v = std::strtol(s, nullptr, 10);
        if (v < 1)
            v = 1;
        if (v > 256)
            v = 256;
        return static_cast<std::uint32_t>(v);
    }();
    return value;
}

} // namespace

std::uint32_t
WorkerPool::resolveCount(std::uint32_t requested)
{
    return requested > 0 ? requested : envWorkerDefault();
}

bool
WorkerPool::forceThreads()
{
    static const bool value = [] {
        const char *s = std::getenv("FCOS_FORCE_THREADS");
        return s && *s && *s != '0';
    }();
    return value;
}

WorkerPool::WorkerPool(std::uint32_t workers) : workers_(workers)
{
    fcos_assert(workers_ >= 1, "a pool needs at least one worker");
    std::uint32_t hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    // One OS thread per lane that can actually run concurrently; the
    // caller's thread serves stripe 0, so spawn (threads - 1).
    std::uint32_t phys =
        forceThreads() ? workers_ : std::min(workers_, hw);
    // Resolve the per-lane counters now, while construction is serial:
    // worker threads may only bump them (relaxed-atomic adds).
    if (obs::metricsOn()) {
        obs_epoch_ = obs::metricsEpoch();
        obs::Registry &m = obs::metrics();
        lane_busy_.reserve(workers_);
        for (std::uint32_t t = 0; t < workers_; ++t)
            lane_busy_.push_back(&m.counter(
                "host.pool.lane" + std::to_string(t) + ".busy_ns"));
        wall_ = &m.counter("host.pool.wall_ns");
    }
    for (std::uint32_t t = 1; t < phys; ++t)
        threads_.emplace_back([this, t] { threadMain(t); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    start_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkerPool::runLane(const LaneFn &fn, std::uint32_t lane)
{
    if (obs::metricsLive(obs_epoch_)) {
        const auto t0 = std::chrono::steady_clock::now();
        fn(lane);
        lane_busy_[lane]->add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    } else {
        fn(lane);
    }
}

void
WorkerPool::threadMain(std::uint32_t stripe)
{
    std::uint64_t seen = 0;
    for (;;) {
        const LaneFn *job = nullptr;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            start_.wait(lk, [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        const std::uint32_t stride = threadCount();
        for (std::uint32_t lane = stripe; lane < workers_; lane += stride)
            runLane(*job, lane);
        {
            std::lock_guard<std::mutex> lk(mutex_);
            --remaining_;
        }
        done_.notify_one();
    }
}

void
WorkerPool::run(const LaneFn &fn)
{
    const bool mlive = obs::metricsLive(obs_epoch_);
    const auto w0 = mlive ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    if (threads_.empty()) {
        for (std::uint32_t lane = 0; lane < workers_; ++lane)
            runLane(fn, lane);
    } else {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            job_ = &fn;
            remaining_ = static_cast<std::uint32_t>(threads_.size());
            ++generation_;
        }
        start_.notify_all();
        // The caller is stripe 0 of the round.
        const std::uint32_t stride = threadCount();
        for (std::uint32_t lane = 0; lane < workers_; lane += stride)
            runLane(fn, lane);
        std::unique_lock<std::mutex> lk(mutex_);
        done_.wait(lk, [&] { return remaining_ == 0; });
        job_ = nullptr;
    }
    if (mlive) {
        wall_->add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - w0)
                .count()));
    }
}

void
WorkerPool::publishMetrics()
{
    if (!obs::metricsLive(obs_epoch_))
        return;
    const std::uint64_t wall = wall_->value();
    if (wall == 0)
        return;
    obs::Registry &m = obs::metrics();
    for (std::uint32_t t = 0; t < workers_; ++t) {
        m.gauge("host.pool.lane" + std::to_string(t) + ".busy_frac")
            .set(static_cast<double>(lane_busy_[t]->value()) /
                 static_cast<double>(wall));
    }
}

} // namespace fcos
