/**
 * @file
 * A fixed pool of host worker threads for sharded simulation work.
 *
 * The pool separates *logical workers* (deterministic shard lanes —
 * the number the simulation's partition is keyed on) from *physical
 * threads* (how many OS threads actually execute them). Lane contents
 * and lane-internal order are fixed by the caller, so results are
 * bit-identical whether the lanes run on 1 thread or 16: physical
 * thread count is a pure performance knob, never a semantics knob.
 *
 * On hosts with fewer cores than workers the pool spawns only as many
 * threads as can run concurrently (extra lanes are striped over them);
 * with a single usable thread it degenerates to inline execution with
 * zero synchronization cost. FCOS_FORCE_THREADS=1 forces one OS thread
 * per worker regardless of core count — the ThreadSanitizer tier uses
 * it so cross-thread synchronization is exercised even on small CI
 * hosts.
 */

#ifndef FCOS_SIM_WORKER_POOL_H
#define FCOS_SIM_WORKER_POOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace fcos {

class WorkerPool
{
  public:
    /** A job executed once per lane; lane is in [0, workerCount()). */
    using LaneFn = std::function<void(std::uint32_t lane)>;

    /** @param workers  number of logical worker lanes (>= 1). */
    explicit WorkerPool(std::uint32_t workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Logical worker lanes (the deterministic shard count). */
    std::uint32_t workerCount() const { return workers_; }

    /** Physical OS threads executing the lanes (informational). */
    std::uint32_t threadCount() const
    {
        return static_cast<std::uint32_t>(threads_.size()) + 1;
    }

    /**
     * Execute @p fn(lane) for every lane, then barrier. Lane t runs on
     * physical thread (t % threadCount()); each thread executes its
     * lanes in increasing order. The calling thread participates (it
     * runs stripe 0), so a 1-thread pool is plain inline execution.
     */
    void run(const LaneFn &fn);

    /**
     * Resolve a configured worker count: a positive @p requested wins;
     * 0 defers to the FCOS_WORKERS environment variable (default 1 =
     * serial execution, today's single-thread semantics).
     */
    static std::uint32_t resolveCount(std::uint32_t requested);

    /** True when FCOS_FORCE_THREADS=1 demands one OS thread per lane. */
    static bool forceThreads();

    /**
     * Publish per-lane busy fractions (lane wall time / pool wall
     * time) as "host.pool.lane<i>.busy_frac" gauges. Host-clock
     * derived, hence the "host." prefix — excluded from deterministic
     * renders. Serial contexts only (e.g. after a drain). No-op unless
     * metrics were on when the pool was constructed.
     */
    void publishMetrics();

  private:
    void threadMain(std::uint32_t stripe);
    /** Run @p fn(lane), timing it into the lane's busy counter when
     *  metrics are live (one branch otherwise). */
    void runLane(const LaneFn &fn, std::uint32_t lane);

    std::uint32_t workers_;
    std::vector<std::thread> threads_;

    /** Metrics epoch at construction plus per-lane busy-nanosecond
     *  counters (Counter is relaxed-atomic: lanes bump concurrently)
     *  and total run() wall time. Empty/0 when metrics are off. */
    std::uint64_t obs_epoch_ = 0;
    std::vector<obs::Counter *> lane_busy_;
    obs::Counter *wall_ = nullptr;

    std::mutex mutex_;
    std::condition_variable start_;
    std::condition_variable done_;
    const LaneFn *job_ = nullptr;
    std::uint64_t generation_ = 0;
    std::uint32_t remaining_ = 0;
    bool stop_ = false;
};

} // namespace fcos

#endif // FCOS_SIM_WORKER_POOL_H
