#include "sim/event_queue.h"

#include "util/log.h"

namespace fcos {

void
EventQueue::schedule(Time when, Callback cb)
{
    fcos_assert(when >= now_, "schedule into the past: %llu < %llu",
                (unsigned long long)when, (unsigned long long)now_);
    heap_.push(Event{when, next_seq_++, std::move(cb)});
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, safe
    // because we pop immediately after.
    Event ev = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
}

void
EventQueue::run()
{
    while (runOne()) {
    }
}

Time
EventQueue::runUntil(Time deadline)
{
    while (!heap_.empty() && heap_.top().when <= deadline)
        runOne();
    if (now_ < deadline && heap_.empty())
        now_ = deadline;
    return now_;
}

} // namespace fcos
