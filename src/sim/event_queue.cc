#include "sim/event_queue.h"

#include "sim/worker_pool.h"
#include "util/log.h"

namespace fcos {

// --------------------------------------------------------------------------
// Explicit binary heap over (when, seq)
// --------------------------------------------------------------------------

void
EventQueue::siftUp(std::size_t i)
{
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!earlier(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t left = 2 * i + 1;
        if (left >= n)
            break;
        std::size_t best = left;
        std::size_t right = left + 1;
        if (right < n && earlier(heap_[right], heap_[left]))
            best = right;
        if (!earlier(heap_[best], heap_[i]))
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

void
EventQueue::push(Event ev)
{
    heap_.push_back(std::move(ev));
    siftUp(heap_.size() - 1);
    debugCheckHeap();
    if (obs::metricsLive(obs_epoch_) && heap_.size() > stat_max_depth_)
        stat_max_depth_ = heap_.size();
}

EventQueue::Event
EventQueue::popMin()
{
    fcos_assert(!heap_.empty(), "pop from an empty event heap");
    Event out = std::move(heap_.front());
    if (heap_.size() > 1)
        heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    debugCheckHeap();
    return out;
}

bool
EventQueue::heapIsValid() const
{
    for (std::size_t i = 1; i < heap_.size(); ++i) {
        if (earlier(heap_[i], heap_[(i - 1) / 2]))
            return false;
    }
    return true;
}

void
EventQueue::debugCheckHeap() const
{
#ifndef NDEBUG
    fcos_assert(heapIsValid(), "event heap invariant violated");
#endif
}

// --------------------------------------------------------------------------
// Scheduling
// --------------------------------------------------------------------------

void
EventQueue::enqueue(Event ev)
{
    fcos_assert(!in_worker_phase_,
                "worker-phase code must not schedule events");
    fcos_assert(ev.when >= now_, "schedule into the past: %llu < %llu",
                (unsigned long long)ev.when, (unsigned long long)now_);
    // During a wave, same-timestamp events join the wave's next
    // sub-batch directly: they were assigned increasing seqs in this
    // commit phase, so the ready list is already in (when, seq) order
    // and the heap's O(log n) churn is skipped entirely.
    if (in_wave_ && ev.when == now_) {
        if (obs::metricsLive(obs_epoch_))
            ++stat_bypass_;
        ready_.push_back(std::move(ev));
    } else {
        push(std::move(ev));
    }
}

void
EventQueue::schedule(Time when, Callback cb)
{
    enqueue(Event{when, next_seq_++, std::move(cb), {}, kNoShard});
}

void
EventQueue::scheduleSharded(Time when, std::uint32_t shard, Callback work,
                            Callback commit)
{
    fcos_assert(shard != kNoShard, "invalid shard id");
    enqueue(Event{when, next_seq_++, std::move(commit), std::move(work),
                  shard});
}

void
EventQueue::merge(std::vector<std::pair<Time, Callback>> stream)
{
    fcos_assert(!in_wave_, "merge during a wave is not supported");
    // Small streams: ordinary pushes. Large streams: append then one
    // Floyd heapify pass — O(existing + stream) instead of
    // O(stream log n) sift-ups.
    if (stream.size() < 8 || stream.size() < heap_.size() / 4) {
        for (auto &e : stream)
            schedule(e.first, std::move(e.second));
        return;
    }
    for (auto &e : stream) {
        fcos_assert(e.first >= now_,
                    "merge into the past: %llu < %llu",
                    (unsigned long long)e.first,
                    (unsigned long long)now_);
        heap_.push_back(Event{e.first, next_seq_++, std::move(e.second),
                              {}, kNoShard});
    }
    if (heap_.size() > 1) {
        for (std::size_t i = heap_.size() / 2; i-- > 0;)
            siftDown(i);
    }
    debugCheckHeap();
    if (obs::metricsLive(obs_epoch_) && heap_.size() > stat_max_depth_)
        stat_max_depth_ = heap_.size();
}

// --------------------------------------------------------------------------
// Serial execution
// --------------------------------------------------------------------------

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    Event ev = popMin();
    now_ = ev.when;
    if (ev.work)
        ev.work();
    ++executed_;
    ev.commit();
    return true;
}

void
EventQueue::run()
{
    while (runOne()) {
    }
}

Time
EventQueue::runUntil(Time deadline)
{
    while (!heap_.empty() && heap_.front().when <= deadline)
        runOne();
    // The clock always reaches the deadline: an event queued beyond it
    // must not leave the caller's notion of "now" stale below it.
    if (now_ < deadline)
        now_ = deadline;
    return now_;
}

// --------------------------------------------------------------------------
// Parallel (sharded two-phase) execution
// --------------------------------------------------------------------------

void
EventQueue::runBatch(std::vector<Event> &batch, WorkerPool &pool,
                     std::vector<std::vector<const Event *>> &lanes,
                     const std::function<void(std::uint32_t)> &lane_fn)
{
    if (pool.threadCount() <= 1) {
        // Degenerate pool (one physical thread): lane partitioning
        // buys nothing, so run the work phase inline in seq order —
        // a valid parallel schedule, since same-shard events keep
        // their order and cross-shard order is unobservable.
        in_worker_phase_ = true;
        for (const Event &ev : batch) {
            if (ev.work)
                ev.work();
        }
        in_worker_phase_ = false;
    } else {
        // Worker phase: shard-local work, partitioned by shard so one
        // shard's events stay ordered and never run concurrently.
        bool any_work = false;
        for (const Event &ev : batch) {
            if (ev.work) {
                lanes[ev.shard % lanes.size()].push_back(&ev);
                any_work = true;
            }
        }
        if (any_work) {
            in_worker_phase_ = true;
            pool.run(lane_fn);
            in_worker_phase_ = false;
            for (auto &lane : lanes)
                lane.clear();
        }
    }
    // Commit phase: the per-worker result streams merge back into one
    // deterministic order — every side effect lands in (when, seq)
    // order, exactly as the serial loop would have produced it.
    for (Event &ev : batch) {
        ++executed_;
        ev.commit();
    }
    batch.clear();
}

void
EventQueue::run(WorkerPool &pool)
{
    if (pool.workerCount() <= 1) {
        run();
        return;
    }
    // The unbounded deadline never advances the clock past the last
    // event, matching run()'s clock semantics exactly.
    runUntil(~Time{0}, pool);
}

Time
EventQueue::runUntil(Time deadline, WorkerPool &pool)
{
    if (pool.workerCount() <= 1)
        return runUntil(deadline);
    fcos_assert(!in_wave_, "re-entrant parallel run");
    // Wave-shape metrics are resolved once per drain; recording happens
    // on the caller's thread between phases (a serial context).
    const bool mlive = obs::metricsLive(obs_epoch_);
    obs::Histogram *wave_hist =
        mlive ? &obs::metrics().histogram("sim.queue.wave_size")
              : nullptr;
    std::vector<Event> batch;
    std::vector<std::vector<const Event *>> lanes(pool.workerCount());
    // One LaneFn for the whole drain — runBatch reuses it instead of
    // wrapping a fresh closure per sub-batch.
    const std::function<void(std::uint32_t)> lane_fn =
        [&lanes](std::uint32_t lane) {
            for (const Event *ev : lanes[lane])
                ev->work();
        };
    while (!heap_.empty() && heap_.front().when <= deadline) {
        const Time t = heap_.front().when;
        now_ = t;
        in_wave_ = true;
        // The wave's first sub-batch: every queued event at time t,
        // extracted in (when, seq) order.
        while (!heap_.empty() && heap_.front().when == t)
            batch.push_back(popMin());
        if (mlive)
            ++stat_waves_;
        while (!batch.empty()) {
            if (wave_hist)
                wave_hist->record(batch.size());
            runBatch(batch, pool, lanes, lane_fn);
            // Commits scheduled same-time events straight onto the
            // ready list (in seq order): they form the wave's next
            // sub-batch without touching the heap.
            batch.swap(ready_);
        }
        in_wave_ = false;
    }
    // Same deadline-advance contract as the serial runUntil; a full
    // run() passes an unbounded deadline and never moves the clock
    // past the last executed event.
    if (deadline != ~Time{0} && now_ < deadline)
        now_ = deadline;
    return now_;
}

void
EventQueue::publishMetrics()
{
    if (!obs::metricsLive(obs_epoch_))
        return;
    obs::Registry &m = obs::metrics();
    m.counter("sim.queue.events_executed").add(executed_ - pub_executed_);
    pub_executed_ = executed_;
    m.counter("sim.queue.heap_bypass_hits").add(stat_bypass_ - pub_bypass_);
    pub_bypass_ = stat_bypass_;
    m.counter("sim.queue.waves").add(stat_waves_ - pub_waves_);
    pub_waves_ = stat_waves_;
    m.gauge("sim.queue.heap_depth_peak")
        .noteMax(static_cast<double>(stat_max_depth_));
}

} // namespace fcos
