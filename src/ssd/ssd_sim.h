/**
 * @file
 * Event-driven SSD timing simulator (the MQSim substitute).
 *
 * Resources:
 *  - one Facility per *plane* (sensing / programming occupy the plane;
 *    the cache latch lets the next sense start while the previous page
 *    moves over the channel, exactly the cache-read pipelining of
 *    Section 3.1);
 *  - one Facility per *channel* (die <-> controller DMA serializes on
 *    the shared bus);
 *  - one Facility for the *external link* (host <-> SSD);
 *  - one Facility per channel for the ISP accelerator port.
 *
 * Platform drivers chain asynchronous operations with completion
 * callbacks; the deterministic event queue yields reproducible
 * timelines. Energy is booked per activity into the EnergyMeter.
 */

#ifndef FCOS_SSD_SSD_SIM_H
#define FCOS_SSD_SSD_SIM_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "ssd/config.h"
#include "ssd/energy.h"

namespace fcos::ssd {

class SsdSim
{
  public:
    using Callback = std::function<void()>;

    explicit SsdSim(const SsdConfig &cfg);

    const SsdConfig &config() const { return cfg_; }
    EventQueue &queue() { return queue_; }
    EnergyMeter &energy() { return energy_; }
    const EnergyMeter &energy() const { return energy_; }

    std::uint32_t planeCount() const
    {
        return cfg_.totalPlanes();
    }

    std::uint32_t channelOfPlane(std::uint32_t plane_idx) const;

    /**
     * Occupy plane @p plane_idx for @p duration (a sense / program /
     * erase), booking @p joules against @p comp; @p done fires at
     * completion.
     */
    void planeOp(std::uint32_t plane_idx, Time duration, double joules,
                 EnergyComponent comp, Callback done);

    /** Move @p bytes die -> controller over the plane's channel. */
    void dmaFromDie(std::uint32_t plane_idx, std::uint64_t bytes,
                    Callback done);

    /** Move @p bytes controller -> die (program data-in). */
    void dmaToDie(std::uint32_t plane_idx, std::uint64_t bytes,
                  Callback done)
    {
        dmaFromDie(plane_idx, bytes, std::move(done));
    }

    /** Move @p bytes across the external (PCIe) link. */
    void externalTransfer(std::uint64_t bytes, Callback done);

    /** Book ISP accelerator time on @p channel for @p bytes of bitwise
     *  work (Table 1 energy: 93 pJ / 64 B). */
    void accelCompute(std::uint32_t channel, std::uint64_t bytes,
                      Callback done);

    /** Run all scheduled work to completion and return the makespan. */
    Time drain();

    /** Record a completion time (drivers call from final callbacks). */
    void noteCompletion(Time t);

    /** Busy time of a channel bus (for timeline reports). */
    Time channelBusyTime(std::uint32_t channel) const;
    /** Busy time of the external link. */
    Time externalBusyTime() const { return external_.busyTime(); }
    /** Maximum plane busy time across the SSD. */
    Time maxPlaneBusyTime() const;

  private:
    SsdConfig cfg_;
    EventQueue queue_;
    EnergyMeter energy_;
    std::vector<Facility> planes_;
    std::vector<Facility> channels_;
    std::vector<Facility> accel_ports_;
    Facility external_;
    Time makespan_ = 0;
};

} // namespace fcos::ssd

#endif // FCOS_SSD_SSD_SIM_H
