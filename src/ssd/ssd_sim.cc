#include "ssd/ssd_sim.h"

#include <algorithm>

#include "util/log.h"

namespace fcos::ssd {

SsdSim::SsdSim(const SsdConfig &cfg) : cfg_(cfg), external_("external")
{
    planes_.reserve(cfg.totalPlanes());
    for (std::uint32_t i = 0; i < cfg.totalPlanes(); ++i)
        planes_.emplace_back("plane");
    channels_.reserve(cfg.channels);
    accel_ports_.reserve(cfg.channels);
    for (std::uint32_t i = 0; i < cfg.channels; ++i) {
        channels_.emplace_back("channel");
        accel_ports_.emplace_back("accel");
    }
}

std::uint32_t
SsdSim::channelOfPlane(std::uint32_t plane_idx) const
{
    fcos_assert(plane_idx < planeCount(), "plane %u out of range",
                plane_idx);
    std::uint32_t die = plane_idx / cfg_.geometry.planesPerDie;
    return die / cfg_.diesPerChannel;
}

void
SsdSim::planeOp(std::uint32_t plane_idx, Time duration, double joules,
                EnergyComponent comp, Callback done)
{
    fcos_assert(plane_idx < planeCount(), "plane %u out of range",
                plane_idx);
    energy_.add(comp, joules);
    Time finish = planes_[plane_idx].acquire(queue_.now(), duration);
    queue_.schedule(finish, std::move(done));
}

void
SsdSim::dmaFromDie(std::uint32_t plane_idx, std::uint64_t bytes,
                   Callback done)
{
    std::uint32_t ch = channelOfPlane(plane_idx);
    energy_.add(EnergyComponent::ChannelDma, cfg_.io.channelEnergyJ(bytes));
    Time finish =
        channels_[ch].acquire(queue_.now(), cfg_.io.channelTime(bytes));
    queue_.schedule(finish, std::move(done));
}

void
SsdSim::externalTransfer(std::uint64_t bytes, Callback done)
{
    energy_.add(EnergyComponent::ExternalLink,
                cfg_.io.externalEnergyJ(bytes));
    Time finish =
        external_.acquire(queue_.now(), cfg_.io.externalTime(bytes));
    queue_.schedule(finish, std::move(done));
}

void
SsdSim::accelCompute(std::uint32_t channel, std::uint64_t bytes,
                     Callback done)
{
    fcos_assert(channel < cfg_.channels, "channel %u out of range",
                channel);
    energy_.add(EnergyComponent::IspAccel, cfg_.io.accelEnergyJ(bytes));
    // The accelerator streams at channel rate; its port is per channel,
    // so accelerator work never outruns its input.
    Time finish =
        accel_ports_[channel].acquire(queue_.now(), cfg_.io.channelTime(bytes));
    queue_.schedule(finish, std::move(done));
}

Time
SsdSim::drain()
{
    queue_.run();
    makespan_ = std::max(makespan_, queue_.now());
    return makespan_;
}

void
SsdSim::noteCompletion(Time t)
{
    makespan_ = std::max(makespan_, t);
}

Time
SsdSim::channelBusyTime(std::uint32_t channel) const
{
    fcos_assert(channel < cfg_.channels, "channel %u out of range",
                channel);
    return channels_[channel].busyTime();
}

Time
SsdSim::maxPlaneBusyTime() const
{
    Time m = 0;
    for (const auto &p : planes_)
        m = std::max(m, p.busyTime());
    return m;
}

} // namespace fcos::ssd
