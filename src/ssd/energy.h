/**
 * @file
 * Energy accounting across the storage/compute hierarchy.
 *
 * Each simulated activity books joules against a named component; the
 * Figure 18 bench reports bits-per-joule ratios from these meters.
 */

#ifndef FCOS_SSD_ENERGY_H
#define FCOS_SSD_ENERGY_H

#include <array>
#include <cstdint>
#include <string>

namespace fcos::ssd {

enum class EnergyComponent : std::uint8_t
{
    NandRead,
    NandProgram,
    NandErase,
    NandMws,
    ChannelDma,
    ExternalLink,
    Controller,
    IspAccel,
    HostCpu,
    HostDram,
    kCount,
};

const char *energyComponentName(EnergyComponent c);

class EnergyMeter
{
  public:
    void add(EnergyComponent c, double joules)
    {
        joules_[static_cast<std::size_t>(c)] += joules;
    }

    double get(EnergyComponent c) const
    {
        return joules_[static_cast<std::size_t>(c)];
    }

    double total() const
    {
        double t = 0.0;
        for (double j : joules_)
            t += j;
        return t;
    }

    void reset() { joules_.fill(0.0); }

    /** Multiply one component (channel-symmetry rescaling). */
    void scale(EnergyComponent c, double factor)
    {
        joules_[static_cast<std::size_t>(c)] *= factor;
    }

    /** Multi-line breakdown for reports. */
    std::string breakdown() const;

  private:
    std::array<double, static_cast<std::size_t>(EnergyComponent::kCount)>
        joules_{};
};

} // namespace fcos::ssd

#endif // FCOS_SSD_ENERGY_H
