/**
 * @file
 * Minimal page-granularity FTL with Flash-Cosmos-aware placement
 * (paper Section 6.3).
 *
 * Two allocation policies:
 *
 *  - Striped: pages of a vector round-robin across every (die, plane)
 *    column for maximum read parallelism — how all four evaluated
 *    platforms lay out regular data.
 *
 *  - Grouped: operands that will feed the same bulk bitwise operations
 *    are co-located so that, per column, operand k of the group sits at
 *    wordline k of the *same sub-block* (NAND string set). This is the
 *    storage-layout requirement that lets one intra-block MWS sense all
 *    operands at once; a group column grows extra sub-blocks every
 *    wordlinesPerSubBlock vectors.
 *
 * Garbage collection and wear levelling are intentionally out of scope
 * for this reproduction (the evaluated workloads are write-once,
 * compute-many); the allocator is a bump allocator over sub-blocks.
 */

#ifndef FCOS_SSD_FTL_H
#define FCOS_SSD_FTL_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nand/geometry.h"

namespace fcos::ssd {

/** Physical location of one page: die index plus in-die address. */
struct PhysPage
{
    std::uint32_t die = 0;
    nand::WordlineAddr addr;

    bool operator==(const PhysPage &o) const
    {
        return die == o.die && addr == o.addr;
    }
};

class Ftl
{
  public:
    Ftl(std::uint32_t dies, const nand::Geometry &geom);

    std::uint32_t dies() const { return dies_; }
    const nand::Geometry &geometry() const { return geom_; }

    /** Number of (die, plane) columns data stripes across. */
    std::uint32_t columns() const
    {
        return dies_ * geom_.planesPerDie;
    }

    /** Allocate @p pages pages striped across all columns. */
    std::vector<PhysPage> allocateStriped(std::uint64_t pages);

    /**
     * Allocate @p pages pages for one vector of group @p group.
     * Successive vectors of the same group stack at successive
     * wordlines of shared sub-blocks (see file comment).
     *
     * @p start_column rotates the stripe: page i lands on column
     * (start_column + i) % columns(). Every vector of one group must
     * use the same start so group wordlines stay in lockstep; the
     * offset is what lets independent small vectors (e.g. one-page
     * requests) land on *different* dies instead of all piling onto
     * column 0 — the placement knob concurrent mixed traffic uses.
     */
    std::vector<PhysPage> allocateInGroup(std::uint64_t group,
                                          std::uint64_t pages,
                                          std::uint32_t start_column = 0);

    /** Sub-blocks consumed on (die, plane) so far. */
    std::uint64_t usedSubBlocks(std::uint32_t die,
                                std::uint32_t plane) const;

  private:
    struct SubBlockRef
    {
        std::uint32_t block;
        std::uint32_t subBlock;
    };

    struct GroupSlot
    {
        SubBlockRef sb{0, 0};
        std::uint32_t nextWordline = 0;
        bool open = false;
    };

    /** Bump-allocate the next fresh sub-block of a column. */
    SubBlockRef nextSubBlock(std::uint32_t column);

    std::uint32_t dieOfColumn(std::uint32_t column) const
    {
        return column / geom_.planesPerDie;
    }
    std::uint32_t planeOfColumn(std::uint32_t column) const
    {
        return column % geom_.planesPerDie;
    }

    std::uint32_t dies_;
    nand::Geometry geom_;
    /** Per-column count of consumed sub-blocks. */
    std::vector<std::uint64_t> bump_;
    /** Per-column open sub-block for striped data. */
    std::vector<GroupSlot> striped_open_;
    /** group -> per-column list of slots (one per stripe row). */
    std::unordered_map<std::uint64_t, std::vector<std::vector<GroupSlot>>>
        groups_;
};

} // namespace fcos::ssd

#endif // FCOS_SSD_FTL_H
