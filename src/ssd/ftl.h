/**
 * @file
 * Capacity-recycling page-granularity FTL with Flash-Cosmos-aware
 * placement (paper Section 6.3).
 *
 * Two allocation policies:
 *
 *  - Striped: pages of a vector round-robin across every (die, plane)
 *    column for maximum read parallelism — how all four evaluated
 *    platforms lay out regular data.
 *
 *  - Grouped: operands that will feed the same bulk bitwise operations
 *    are co-located so that, per column, operand k of the group sits at
 *    wordline k of the *same sub-block* (NAND string set). This is the
 *    storage-layout requirement that lets one intra-block MWS sense all
 *    operands at once; a group column grows extra sub-blocks every
 *    wordlinesPerSubBlock vectors.
 *
 * Allocations return logical page numbers (Lpn) resolved through a
 * page-level mapping table, so physical placement can change under a
 * live handle. free() invalidates a page (overwrite/trim); once a
 * column runs low on free blocks, collect() picks the allocated block
 * with the fewest live pages (greedy), relocates its live sub-blocks
 * *as units* — every vector of a group moves together, wordline
 * offsets preserved, so Equation-1 co-location survives relocation —
 * and erases the block back onto the free list. The caller (the
 * drive) replays the returned move/erase plan as real copyback +
 * erase traffic on the engine timeline. Per-block erase counters are
 * kept for wear accounting (ROADMAP direction 3).
 *
 * On a fresh FTL with no frees, block and sub-block consumption order
 * is identical to the historical bump allocator, which keeps the
 * write-once paper workloads bit-identical to their goldens (GC never
 * triggers there).
 */

#ifndef FCOS_SSD_FTL_H
#define FCOS_SSD_FTL_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nand/geometry.h"

namespace fcos::ssd {

/** Physical location of one page: die index plus in-die address. */
struct PhysPage
{
    std::uint32_t die = 0;
    nand::WordlineAddr addr;

    bool operator==(const PhysPage &o) const
    {
        return die == o.die && addr == o.addr;
    }
};

/** Logical page handle; stable across GC relocation. */
using Lpn = std::uint64_t;
inline constexpr Lpn kNoLpn = ~Lpn{0};

class Ftl
{
  public:
    struct Config
    {
        /** GC kicks in when a column's free-block count drops to this
         *  reserve (erased blocks ready for new sub-block chains). */
        std::uint32_t gcReserveBlocks = 1;
    };

    Ftl(std::uint32_t dies, const nand::Geometry &geom);
    Ftl(std::uint32_t dies, const nand::Geometry &geom,
        const Config &cfg);

    std::uint32_t dies() const { return dies_; }
    const nand::Geometry &geometry() const { return geom_; }

    /** Number of (die, plane) columns data stripes across. */
    std::uint32_t columns() const
    {
        return dies_ * geom_.planesPerDie;
    }

    /** Allocate @p pages pages striped across all columns. */
    std::vector<Lpn> allocateStriped(std::uint64_t pages);

    /**
     * Allocate @p pages pages for one vector of group @p group.
     * Successive vectors of the same group stack at successive
     * wordlines of shared sub-blocks (see file comment).
     *
     * @p start_column rotates the stripe: page i lands on column
     * (start_column + i) % columns(). Every vector of one group must
     * use the same start so group wordlines stay in lockstep; the
     * offset is what lets independent small vectors (e.g. one-page
     * requests) land on *different* dies instead of all piling onto
     * column 0 — the placement knob concurrent mixed traffic uses.
     */
    std::vector<Lpn> allocateInGroup(std::uint64_t group,
                                     std::uint64_t pages,
                                     std::uint32_t start_column = 0);

    /** Current physical location of a live page. */
    PhysPage physOf(Lpn lpn) const;

    bool isLive(Lpn lpn) const
    {
        return lpn < map_.size() && live_[lpn];
    }

    /** Invalidate one page (overwrite of its LBA, or trim). The
     *  wordline stays dead until GC erases its block. */
    void free(Lpn lpn);

    /** Pin the sub-block holding @p lpn: its block is never chosen as
     *  a GC victim and the page never relocates (the drive's reserved
     *  erased-reference wordlines, which must stay physically
     *  unprogrammed, live in pinned sub-blocks). */
    void pin(Lpn lpn);

    /** Drop a group's placement chains (call when the last vector of
     *  the group is freed, so group state is O(live groups)). Open
     *  sub-blocks of the group seal; their dead pages await GC. */
    void dropGroup(std::uint64_t group);

    // ----------------------------------------------------------------
    // Garbage collection
    // ----------------------------------------------------------------

    /** One live-page relocation of a GC plan (same column). */
    struct GcMove
    {
        PhysPage src;
        PhysPage dst;
    };

    /** Host-time result of collect(): the mapping table has already
     *  been updated; the caller owes the timeline these copybacks
     *  (in order) followed by the victim-block erase. */
    struct GcPlan
    {
        std::uint32_t column = 0;
        std::uint32_t block = 0; ///< victim (erase target)
        std::vector<GcMove> moves;
    };

    /** True when @p column is at/below the free-block reserve and an
     *  eligible victim exists. Never true before a free() dents the
     *  write-once allocation pattern. */
    bool gcNeeded(std::uint32_t column) const;

    /**
     * Run one greedy collection on @p column: victim = the allocated
     * block with the fewest live pages (ties toward the lowest block
     * index) that is not the open block, holds no pinned sub-block,
     * and whose (die, plane, block) key is absent from @p busy_keys
     * (sorted; the conflict keys of every live engine request — their
     * captured physical addresses must not move). Live sub-blocks
     * relocate as units into fresh sub-blocks of the same column with
     * wordline offsets preserved; the victim returns to the free list.
     *
     * @return false when no eligible victim exists (caller backs off).
     */
    bool collect(std::uint32_t column,
                 const std::vector<std::uint64_t> &busy_keys,
                 GcPlan *plan);

    // ----------------------------------------------------------------
    // Accounting (tests, steady-state assertions, wear bookkeeping)
    // ----------------------------------------------------------------

    /** Sub-blocks currently allocated on (die, plane). */
    std::uint64_t usedSubBlocks(std::uint32_t die,
                                std::uint32_t plane) const;

    /** Live (mapped) pages of a column. */
    std::uint64_t livePages(std::uint32_t column) const;

    /** Blocks of a column available for fresh allocation. */
    std::uint64_t freeBlocks(std::uint32_t column) const;

    /** Blocks of a column holding at least one allocated sub-block. */
    std::uint64_t allocatedBlocks(std::uint32_t column) const;

    bool blockAllocated(std::uint32_t die, std::uint32_t plane,
                        std::uint32_t block) const;

    /** Erase count of a physical block (wear accounting; survives the
     *  block's return to the free list). */
    std::uint64_t eraseCount(std::uint32_t die, std::uint32_t plane,
                             std::uint32_t block) const;

    /** Live page handles drive-wide. */
    std::uint64_t liveCount() const { return live_lpns_; }

    /** Conflict/busy key of a block — the same packing the drive uses
     *  for request conflict footprints. */
    static std::uint64_t blockKey(std::uint32_t die, std::uint32_t plane,
                                  std::uint32_t block)
    {
        return (std::uint64_t{die} << 40) |
               (std::uint64_t{plane} << 32) | block;
    }
    static std::uint64_t blockKey(const PhysPage &p)
    {
        return blockKey(p.die, p.addr.plane, p.addr.block);
    }

  private:
    struct SubBlockRef
    {
        std::uint32_t block = 0;
        std::uint32_t subBlock = 0;

        bool operator==(const SubBlockRef &o) const
        {
            return block == o.block && subBlock == o.subBlock;
        }
    };

    struct GroupSlot
    {
        SubBlockRef sb{0, 0};
        std::uint32_t nextWordline = 0;
        bool open = false;
    };

    /** Striped allocations carry this owner tag instead of a group. */
    static constexpr std::uint64_t kStripedOwner = ~std::uint64_t{0};
    static constexpr std::uint32_t kNoBlock = ~std::uint32_t{0};

    struct SubState
    {
        std::uint64_t liveMask = 0;
        /** Chain backref (group id or kStripedOwner) for fixing the
         *  open slot when this sub-block relocates. */
        std::uint64_t ownerGroup = kStripedOwner;
        std::uint32_t ownerRow = 0;
        std::uint16_t live = 0;
        bool allocated = false;
        bool pinned = false;
    };

    struct BlockState
    {
        std::vector<SubState> subs; ///< sized subBlocksPerBlock
        std::uint32_t livePages = 0;
        std::uint32_t pinnedSubs = 0;
        std::uint32_t allocatedSubs = 0;
    };

    struct Column
    {
        /** Next never-yet-used block (fresh blocks are consumed in
         *  index order — the historical bump order). */
        std::uint32_t nextFresh = 0;
        /** Erased-and-recycled blocks, a min-heap (lowest first). */
        std::vector<std::uint32_t> recycled;
        std::uint32_t openBlock = kNoBlock;
        std::uint32_t openNextSub = 0;
        /** Allocated blocks only — O(touched), not O(geometry). */
        std::unordered_map<std::uint32_t, BlockState> blocks;
        /** Wear accounting; persists across the free list. */
        std::unordered_map<std::uint32_t, std::uint64_t> eraseCounts;
        std::uint64_t allocatedSubs = 0;
        std::uint64_t livePages = 0;
        GroupSlot stripedOpen;
    };

    /** Hand out the next fresh sub-block of a column (recycled blocks
     *  first, then fresh ones in index order). */
    SubBlockRef acquireSub(std::uint32_t column, std::uint64_t owner,
                           std::uint32_t row);

    /** Map a new page at (column, sb, wordline) and return its Lpn. */
    Lpn mapNewPage(std::uint32_t column, const SubBlockRef &sb,
                   std::uint32_t wordline);

    /** Advance @p slot (open a fresh sub-block when needed) and map
     *  the next wordline for owner (@p owner, @p row). */
    Lpn allocFromSlot(std::uint32_t column, GroupSlot &slot,
                      std::uint64_t owner, std::uint32_t row);

    /** Victim block of @p column, or kNoBlock. @p busy_keys sorted. */
    std::uint32_t
    findVictim(std::uint32_t column,
               const std::vector<std::uint64_t> *busy_keys) const;

    std::uint32_t dieOfColumn(std::uint32_t column) const
    {
        return column / geom_.planesPerDie;
    }
    std::uint32_t planeOfColumn(std::uint32_t column) const
    {
        return column % geom_.planesPerDie;
    }
    std::uint32_t columnOf(const PhysPage &p) const
    {
        return p.die * geom_.planesPerDie + p.addr.plane;
    }
    PhysPage physAt(std::uint32_t column, std::uint32_t block,
                    std::uint32_t sub, std::uint32_t wordline) const
    {
        return {dieOfColumn(column),
                nand::WordlineAddr{planeOfColumn(column), block, sub,
                                   wordline}};
    }

    /** Reverse-map key of one wordline (denser than blockKey). */
    std::uint64_t pageKey(const PhysPage &p) const
    {
        return (std::uint64_t{p.die} << 40) |
               (std::uint64_t{p.addr.plane} << 32) |
               (std::uint64_t{p.addr.block} << 16) |
               (std::uint64_t{p.addr.subBlock} << 8) | p.addr.wordline;
    }

    std::uint32_t dies_;
    nand::Geometry geom_;
    Config cfg_;
    std::vector<Column> columns_;

    /** Mapping table: Lpn -> physical page, slots recycled through
     *  free_lpns_ so the table is O(live high-water), not O(total). */
    std::vector<PhysPage> map_;
    std::vector<bool> live_;
    std::vector<Lpn> free_lpns_;
    std::uint64_t live_lpns_ = 0;
    /** Reverse map (packed physical key -> Lpn); O(live). */
    std::unordered_map<std::uint64_t, Lpn> rmap_;

    /** group -> per-column list of slots (one per stripe row). */
    std::unordered_map<std::uint64_t, std::vector<std::vector<GroupSlot>>>
        groups_;
};

} // namespace fcos::ssd

#endif // FCOS_SSD_FTL_H
