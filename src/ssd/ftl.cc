#include "ssd/ftl.h"

#include <algorithm>

#include "util/log.h"

namespace fcos::ssd {

Ftl::Ftl(std::uint32_t dies, const nand::Geometry &geom)
    : Ftl(dies, geom, Config{})
{}

Ftl::Ftl(std::uint32_t dies, const nand::Geometry &geom, const Config &cfg)
    : dies_(dies), geom_(geom), cfg_(cfg), columns_(columns())
{
    fcos_assert(dies > 0, "FTL needs at least one die");
    fcos_assert(geom_.wordlinesPerSubBlock <= 64,
                "sub-block live masks hold at most 64 wordlines");
    fcos_assert(geom_.blocksPerPlane <= (1u << 16) &&
                    geom_.subBlocksPerBlock <= (1u << 8),
                "geometry exceeds the FTL's packed-key widths");
}

Ftl::SubBlockRef
Ftl::acquireSub(std::uint32_t column, std::uint64_t owner,
                std::uint32_t row)
{
    Column &c = columns_[column];
    if (c.openBlock == kNoBlock ||
        c.openNextSub >= geom_.subBlocksPerBlock) {
        std::uint32_t b;
        if (!c.recycled.empty()) {
            std::pop_heap(c.recycled.begin(), c.recycled.end(),
                          std::greater<std::uint32_t>{});
            b = c.recycled.back();
            c.recycled.pop_back();
        } else if (c.nextFresh < geom_.blocksPerPlane) {
            b = c.nextFresh++;
        } else {
            fcos_fatal("FTL out of space on die %u plane %u "
                       "(no free block; all remaining capacity is live "
                       "or pinned)",
                       dieOfColumn(column), planeOfColumn(column));
        }
        BlockState bs;
        bs.subs.resize(geom_.subBlocksPerBlock);
        c.blocks.emplace(b, std::move(bs));
        c.openBlock = b;
        c.openNextSub = 0;
    }
    SubBlockRef ref{c.openBlock, c.openNextSub++};
    BlockState &bs = c.blocks.at(ref.block);
    SubState &ss = bs.subs[ref.subBlock];
    ss = SubState{};
    ss.allocated = true;
    ss.ownerGroup = owner;
    ss.ownerRow = row;
    ++bs.allocatedSubs;
    ++c.allocatedSubs;
    return ref;
}

Lpn
Ftl::mapNewPage(std::uint32_t column, const SubBlockRef &sb,
                std::uint32_t wordline)
{
    const PhysPage p = physAt(column, sb.block, sb.subBlock, wordline);
    Lpn lpn;
    if (!free_lpns_.empty()) {
        lpn = free_lpns_.back();
        free_lpns_.pop_back();
    } else {
        lpn = map_.size();
        map_.push_back(PhysPage{});
        live_.push_back(false);
    }
    map_[lpn] = p;
    live_[lpn] = true;
    ++live_lpns_;
    rmap_.emplace(pageKey(p), lpn);

    Column &c = columns_[column];
    BlockState &bs = c.blocks.at(sb.block);
    SubState &ss = bs.subs[sb.subBlock];
    ss.liveMask |= std::uint64_t{1} << wordline;
    ++ss.live;
    ++bs.livePages;
    ++c.livePages;
    return lpn;
}

Lpn
Ftl::allocFromSlot(std::uint32_t column, GroupSlot &slot,
                   std::uint64_t owner, std::uint32_t row)
{
    if (!slot.open || slot.nextWordline >= geom_.wordlinesPerSubBlock) {
        slot.sb = acquireSub(column, owner, row);
        slot.nextWordline = 0;
        slot.open = true;
    }
    return mapNewPage(column, slot.sb, slot.nextWordline++);
}

std::vector<Lpn>
Ftl::allocateStriped(std::uint64_t pages)
{
    std::vector<Lpn> out;
    out.reserve(pages);
    for (std::uint64_t i = 0; i < pages; ++i) {
        std::uint32_t column = static_cast<std::uint32_t>(i % columns());
        out.push_back(allocFromSlot(column,
                                    columns_[column].stripedOpen,
                                    kStripedOwner, 0));
    }
    return out;
}

std::vector<Lpn>
Ftl::allocateInGroup(std::uint64_t group, std::uint64_t pages,
                     std::uint32_t start_column)
{
    fcos_assert(start_column < columns(),
                "start column %u out of %u columns", start_column,
                columns());
    fcos_assert(group != kStripedOwner, "reserved group id");
    auto &per_column = groups_[group];
    if (per_column.empty())
        per_column.resize(columns());
    std::vector<Lpn> out;
    out.reserve(pages);
    for (std::uint64_t i = 0; i < pages; ++i) {
        std::uint32_t column =
            static_cast<std::uint32_t>((start_column + i) % columns());
        std::size_t row = static_cast<std::size_t>(i / columns());
        auto &slots = per_column[column];
        if (slots.size() <= row)
            slots.resize(row + 1);
        out.push_back(allocFromSlot(column, slots[row], group,
                                    static_cast<std::uint32_t>(row)));
    }
    return out;
}

PhysPage
Ftl::physOf(Lpn lpn) const
{
    fcos_assert(lpn < map_.size() && live_[lpn],
                "physOf of dead lpn %llu", (unsigned long long)lpn);
    return map_[lpn];
}

void
Ftl::free(Lpn lpn)
{
    fcos_assert(lpn < map_.size() && live_[lpn],
                "free of dead lpn %llu", (unsigned long long)lpn);
    const PhysPage p = map_[lpn];
    const std::uint32_t column = columnOf(p);
    Column &c = columns_[column];
    BlockState &bs = c.blocks.at(p.addr.block);
    SubState &ss = bs.subs[p.addr.subBlock];
    const std::uint64_t bit = std::uint64_t{1} << p.addr.wordline;
    fcos_assert(ss.liveMask & bit, "free of unmapped wordline");
    ss.liveMask &= ~bit;
    --ss.live;
    --bs.livePages;
    --c.livePages;
    rmap_.erase(pageKey(p));
    live_[lpn] = false;
    free_lpns_.push_back(lpn);
    --live_lpns_;
}

void
Ftl::pin(Lpn lpn)
{
    const PhysPage p = physOf(lpn);
    Column &c = columns_[columnOf(p)];
    BlockState &bs = c.blocks.at(p.addr.block);
    SubState &ss = bs.subs[p.addr.subBlock];
    if (!ss.pinned) {
        ss.pinned = true;
        ++bs.pinnedSubs;
    }
}

void
Ftl::dropGroup(std::uint64_t group)
{
    groups_.erase(group);
}

// --------------------------------------------------------------------------
// Garbage collection
// --------------------------------------------------------------------------

std::uint32_t
Ftl::findVictim(std::uint32_t column,
                const std::vector<std::uint64_t> *busy_keys) const
{
    const Column &c = columns_[column];
    const std::uint32_t wl_per_block = geom_.wordlinesPerBlock();
    const std::uint64_t free_subs =
        freeBlocks(column) * geom_.subBlocksPerBlock +
        (c.openBlock != kNoBlock
             ? geom_.subBlocksPerBlock - c.openNextSub
             : 0);

    std::uint32_t best = kNoBlock;
    std::uint32_t best_live = 0;
    // Fresh blocks are consumed in index order, so scanning
    // [0, nextFresh) covers every block ever allocated; the map lookup
    // skips the recycled ones. Deterministic, unlike map iteration.
    for (std::uint32_t b = 0; b < c.nextFresh; ++b) {
        auto it = c.blocks.find(b);
        if (it == c.blocks.end())
            continue;
        const BlockState &bs = it->second;
        // The open block is protected only while it still has fresh
        // sub-blocks to hand out; once sealed (full) it is ordinary
        // victim material like any other allocated block.
        if (b == c.openBlock && c.openNextSub < geom_.subBlocksPerBlock)
            continue;
        if (bs.pinnedSubs > 0)
            continue;
        if (bs.livePages >= wl_per_block)
            continue; // nothing reclaimable
        // Relocating live sub-blocks must free more than it consumes,
        // and the fresh sub-blocks it consumes must exist.
        std::uint32_t live_subs = 0;
        for (const SubState &ss : bs.subs)
            live_subs += ss.allocated && ss.live > 0;
        if (live_subs >= geom_.subBlocksPerBlock)
            continue;
        if (live_subs > free_subs)
            continue;
        if (busy_keys &&
            std::binary_search(busy_keys->begin(), busy_keys->end(),
                               blockKey(dieOfColumn(column),
                                        planeOfColumn(column), b)))
            continue;
        if (best == kNoBlock || bs.livePages < best_live) {
            best = b;
            best_live = bs.livePages;
        }
    }
    return best;
}

bool
Ftl::gcNeeded(std::uint32_t column) const
{
    if (freeBlocks(column) > cfg_.gcReserveBlocks)
        return false;
    return findVictim(column, nullptr) != kNoBlock;
}

bool
Ftl::collect(std::uint32_t column,
             const std::vector<std::uint64_t> &busy_keys, GcPlan *plan)
{
    fcos_assert(plan != nullptr, "collect needs a plan out-param");
    const std::uint32_t victim = findVictim(column, &busy_keys);
    if (victim == kNoBlock)
        return false;

    Column &c = columns_[column];
    // Detach the victim before relocating: acquireSub below may open a
    // new block and rehash the map.
    BlockState vb = std::move(c.blocks.at(victim));
    c.blocks.erase(victim);
    c.allocatedSubs -= vb.allocatedSubs;
    c.livePages -= vb.livePages;

    plan->column = column;
    plan->block = victim;
    plan->moves.clear();

    // Open-slot backref of an allocated victim sub (group chain or the
    // striped chain), if any still points at it.
    const auto openSlotOf = [&](const SubState &ss) -> GroupSlot * {
        if (ss.ownerGroup == kStripedOwner)
            return &c.stripedOpen;
        auto git = groups_.find(ss.ownerGroup);
        if (git != groups_.end() &&
            git->second[column].size() > ss.ownerRow)
            return &git->second[column][ss.ownerRow];
        return nullptr;
    };

    for (std::uint32_t s = 0; s < geom_.subBlocksPerBlock; ++s) {
        SubState &ss = vb.subs[s];
        if (!ss.allocated)
            continue;
        const SubBlockRef victim_ref{victim, s};
        if (ss.live == 0) {
            // Dead sub-block: reclaimed for free. It may still be the
            // owner chain's *open* sub (every written wordline already
            // invalidated) — seal the slot so the chain opens a fresh
            // sub-block instead of writing into the erased block.
            GroupSlot *slot = openSlotOf(ss);
            if (slot && slot->open && slot->sb == victim_ref)
                slot->open = false;
            continue;
        }
        // The whole sub-block moves as a unit (wordline offsets
        // preserved), so every vector of the owning group relocates
        // together and Equation-1 co-location survives.
        const SubBlockRef dst = acquireSub(column, ss.ownerGroup,
                                           ss.ownerRow);
        BlockState &db = c.blocks.at(dst.block);
        SubState &ds = db.subs[dst.subBlock];
        ds.liveMask = ss.liveMask;
        ds.live = ss.live;
        db.livePages += ss.live;
        c.livePages += ss.live;
        for (std::uint32_t wl = 0; wl < geom_.wordlinesPerSubBlock;
             ++wl) {
            if (!(ss.liveMask & (std::uint64_t{1} << wl)))
                continue;
            const PhysPage src = physAt(column, victim, s, wl);
            const PhysPage dstp =
                physAt(column, dst.block, dst.subBlock, wl);
            auto rit = rmap_.find(pageKey(src));
            fcos_assert(rit != rmap_.end(), "live page missing from rmap");
            const Lpn lpn = rit->second;
            rmap_.erase(rit);
            rmap_.emplace(pageKey(dstp), lpn);
            map_[lpn] = dstp;
            plan->moves.push_back({src, dstp});
        }
        // Fix the owning chain's open slot so future writes continue
        // at the relocated sub-block.
        GroupSlot *slot = openSlotOf(ss);
        if (slot && slot->open && slot->sb == victim_ref)
            slot->sb = dst;
    }

    // The block returns to the free list at host time; the caller's
    // conflict keys order the timeline erase before any later program
    // into it.
    ++c.eraseCounts[victim];
    c.recycled.push_back(victim);
    std::push_heap(c.recycled.begin(), c.recycled.end(),
                   std::greater<std::uint32_t>{});
    if (c.openBlock == victim)
        c.openBlock = kNoBlock; // sealed open block was victimized
    return true;
}

// --------------------------------------------------------------------------
// Accounting
// --------------------------------------------------------------------------

std::uint64_t
Ftl::usedSubBlocks(std::uint32_t die, std::uint32_t plane) const
{
    std::uint32_t column = die * geom_.planesPerDie + plane;
    fcos_assert(column < columns(), "column out of range");
    return columns_[column].allocatedSubs;
}

std::uint64_t
Ftl::livePages(std::uint32_t column) const
{
    fcos_assert(column < columns(), "column out of range");
    return columns_[column].livePages;
}

std::uint64_t
Ftl::freeBlocks(std::uint32_t column) const
{
    fcos_assert(column < columns(), "column out of range");
    const Column &c = columns_[column];
    return (geom_.blocksPerPlane - c.nextFresh) + c.recycled.size();
}

std::uint64_t
Ftl::allocatedBlocks(std::uint32_t column) const
{
    fcos_assert(column < columns(), "column out of range");
    return columns_[column].blocks.size();
}

bool
Ftl::blockAllocated(std::uint32_t die, std::uint32_t plane,
                    std::uint32_t block) const
{
    std::uint32_t column = die * geom_.planesPerDie + plane;
    fcos_assert(column < columns(), "column out of range");
    return columns_[column].blocks.count(block) != 0;
}

std::uint64_t
Ftl::eraseCount(std::uint32_t die, std::uint32_t plane,
                std::uint32_t block) const
{
    std::uint32_t column = die * geom_.planesPerDie + plane;
    fcos_assert(column < columns(), "column out of range");
    const auto &counts = columns_[column].eraseCounts;
    auto it = counts.find(block);
    return it == counts.end() ? 0 : it->second;
}

} // namespace fcos::ssd
