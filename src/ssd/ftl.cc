#include "ssd/ftl.h"

#include "util/log.h"

namespace fcos::ssd {

Ftl::Ftl(std::uint32_t dies, const nand::Geometry &geom)
    : dies_(dies), geom_(geom), bump_(columns(), 0),
      striped_open_(columns())
{
    fcos_assert(dies > 0, "FTL needs at least one die");
}

Ftl::SubBlockRef
Ftl::nextSubBlock(std::uint32_t column)
{
    std::uint64_t idx = bump_[column]++;
    std::uint32_t block =
        static_cast<std::uint32_t>(idx / geom_.subBlocksPerBlock);
    std::uint32_t sub =
        static_cast<std::uint32_t>(idx % geom_.subBlocksPerBlock);
    if (block >= geom_.blocksPerPlane) {
        fcos_fatal("FTL out of space on die %u plane %u "
                   "(GC is out of scope; use a larger geometry)",
                   dieOfColumn(column), planeOfColumn(column));
    }
    return {block, sub};
}

std::vector<PhysPage>
Ftl::allocateStriped(std::uint64_t pages)
{
    std::vector<PhysPage> out;
    out.reserve(pages);
    for (std::uint64_t i = 0; i < pages; ++i) {
        std::uint32_t column = static_cast<std::uint32_t>(i % columns());
        GroupSlot &slot = striped_open_[column];
        if (!slot.open ||
            slot.nextWordline >= geom_.wordlinesPerSubBlock) {
            slot.sb = nextSubBlock(column);
            slot.nextWordline = 0;
            slot.open = true;
        }
        PhysPage p;
        p.die = dieOfColumn(column);
        p.addr = nand::WordlineAddr{planeOfColumn(column), slot.sb.block,
                                    slot.sb.subBlock,
                                    slot.nextWordline++};
        out.push_back(p);
    }
    return out;
}

std::vector<PhysPage>
Ftl::allocateInGroup(std::uint64_t group, std::uint64_t pages,
                     std::uint32_t start_column)
{
    fcos_assert(start_column < columns(),
                "start column %u out of %u columns", start_column,
                columns());
    auto &per_column = groups_[group];
    if (per_column.empty())
        per_column.resize(columns());
    std::vector<PhysPage> out;
    out.reserve(pages);
    for (std::uint64_t i = 0; i < pages; ++i) {
        std::uint32_t column =
            static_cast<std::uint32_t>((start_column + i) % columns());
        std::size_t row = static_cast<std::size_t>(i / columns());
        auto &slots = per_column[column];
        if (slots.size() <= row)
            slots.resize(row + 1);
        GroupSlot &slot = slots[row];
        if (!slot.open ||
            slot.nextWordline >= geom_.wordlinesPerSubBlock) {
            slot.sb = nextSubBlock(column);
            slot.nextWordline = 0;
            slot.open = true;
        }
        PhysPage p;
        p.die = dieOfColumn(column);
        p.addr = nand::WordlineAddr{planeOfColumn(column), slot.sb.block,
                                    slot.sb.subBlock,
                                    slot.nextWordline++};
        out.push_back(p);
    }
    return out;
}

std::uint64_t
Ftl::usedSubBlocks(std::uint32_t die, std::uint32_t plane) const
{
    std::uint32_t column = die * geom_.planesPerDie + plane;
    fcos_assert(column < columns(), "column out of range");
    return bump_[column];
}

} // namespace fcos::ssd
