#include "ssd/energy.h"

#include "util/log.h"
#include "util/units.h"

namespace fcos::ssd {

const char *
energyComponentName(EnergyComponent c)
{
    switch (c) {
      case EnergyComponent::NandRead:
        return "nand.read";
      case EnergyComponent::NandProgram:
        return "nand.program";
      case EnergyComponent::NandErase:
        return "nand.erase";
      case EnergyComponent::NandMws:
        return "nand.mws";
      case EnergyComponent::ChannelDma:
        return "ssd.channel_dma";
      case EnergyComponent::ExternalLink:
        return "ssd.external_link";
      case EnergyComponent::Controller:
        return "ssd.controller";
      case EnergyComponent::IspAccel:
        return "ssd.isp_accel";
      case EnergyComponent::HostCpu:
        return "host.cpu";
      case EnergyComponent::HostDram:
        return "host.dram";
      case EnergyComponent::kCount:
        break;
    }
    fcos_panic("bad energy component");
}

std::string
EnergyMeter::breakdown() const
{
    std::string out;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
        if (joules_[i] == 0.0)
            continue;
        out += "  ";
        out += energyComponentName(static_cast<EnergyComponent>(i));
        out += ": ";
        out += formatEnergy(joules_[i]);
        out += "\n";
    }
    out += "  total: " + formatEnergy(total()) + "\n";
    return out;
}

} // namespace fcos::ssd
