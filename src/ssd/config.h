/**
 * @file
 * SSD configuration (paper Table 1 and the Figure 7 example).
 *
 * IoParams is the single authority for every I/O rate and energy
 * constant shared by the two execution paths: the analytic SSD timing
 * simulator (ssd/ssd_sim) and the multi-die compute engine
 * (engine/scheduler). Both read the same struct, so the paths cannot
 * drift apart parameter-by-parameter.
 */

#ifndef FCOS_SSD_CONFIG_H
#define FCOS_SSD_CONFIG_H

#include <cstdint>

#include "nand/config.h"
#include "nand/geometry.h"
#include "nand/page_store.h"
#include "util/units.h"

namespace fcos::ssd {

/**
 * I/O rates and movement/controller energy constants (Table 1 plus
 * the SSD-side energy model; see platforms/energy_model.h for the
 * host-side constants and sources).
 */
struct IoParams
{
    /** Channel I/O rate between dies and the controller (Table 1). */
    double channelGBps = 1.2;
    /** External I/O bandwidth, 4-lane PCIe Gen4 (Table 1). */
    double externalGBps = 8.0;

    double channelPjPerBit = 2.0;   ///< die <-> controller movement
    double externalPjPerBit = 10.0; ///< PCIe link + PHY
    double controllerActiveWatts = 2.0; ///< controller while SSD busy
    /** ISP accelerator energy per 64-B bitwise operation (Table 1). */
    double accelPjPer64B = 93.0;

    /** Channel time to move @p bytes between a die and the controller. */
    Time channelTime(std::uint64_t bytes) const
    {
        return transferTime(bytes, channelGBps);
    }

    /** External-link time to move @p bytes to/from the host. */
    Time externalTime(std::uint64_t bytes) const
    {
        return transferTime(bytes, externalGBps);
    }

    /** Joules to move @p bytes over a channel bus. */
    double channelEnergyJ(std::uint64_t bytes) const
    {
        return channelPjPerBit * 1e-12 * static_cast<double>(bytes) * 8.0;
    }

    /** Joules to move @p bytes over the external link. */
    double externalEnergyJ(std::uint64_t bytes) const
    {
        return externalPjPerBit * 1e-12 * static_cast<double>(bytes) * 8.0;
    }

    /** Joules for @p bytes of ISP-accelerator bitwise work. */
    double accelEnergyJ(std::uint64_t bytes) const
    {
        return accelPjPer64B * 1e-12 * (static_cast<double>(bytes) / 64.0);
    }
};

struct SsdConfig
{
    std::uint32_t channels = 8;
    std::uint32_t diesPerChannel = 8;
    nand::Geometry geometry = nand::Geometry::table1();
    nand::Timings timings{};

    /** Page-payload backend for functional execution over this
     *  configuration (engine::FarmConfig::fromSsd forwards it). */
    nand::PageStoreKind pageStore = nand::PageStoreKind::Sparse;

    /** Shared I/O-rate/energy authority (also used by the engine). */
    IoParams io{};

    /** Host worker lanes for engine execution (0 = FCOS_WORKERS env
     *  default, 1 = serial). Purely a host-side throughput knob: the
     *  simulated timeline is bit-identical for any value. */
    std::uint32_t engineWorkers = 0;

    /** Power cap on simultaneously activated blocks in inter-block MWS
     *  (Section 5.2 conclusion). */
    std::uint32_t maxInterBlockMws = 4;

    /** Max wordlines per intra-block MWS (= NAND string length). */
    std::uint32_t maxIntraMwsWordlines() const
    {
        return geometry.wordlinesPerSubBlock;
    }

    std::uint32_t totalDies() const { return channels * diesPerChannel; }
    std::uint32_t totalPlanes() const
    {
        return totalDies() * geometry.planesPerDie;
    }

    /** Channel time to move one page between a die and the controller. */
    Time pageDmaTime() const { return io.channelTime(geometry.pageBytes); }

    /** External-link time to move one page to/from the host. */
    Time pageExternalTime() const
    {
        return io.externalTime(geometry.pageBytes);
    }

    /** The evaluated configuration (Table 1). */
    static SsdConfig table1() { return SsdConfig{}; }

    /**
     * The illustrative SSD of Figure 7: 8 channels x 4 dies x 2 planes,
     * tR = 60 us, so that tDMA = 27 us per 32-KiB die batch and
     * tEXT = 4 us per batch, reproducing the 471/431/335 us timelines.
     */
    static SsdConfig figure7()
    {
        SsdConfig c;
        c.diesPerChannel = 4;
        c.timings.tReadSlc = usToTime(60.0);
        return c;
    }
};

} // namespace fcos::ssd

#endif // FCOS_SSD_CONFIG_H
