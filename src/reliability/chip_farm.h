/**
 * @file
 * Simulated chip population standing in for the paper's real-device
 * infrastructure (Section 5.1): 160 48-layer 3D TLC chips from five
 * wafers, 120 random blocks per chip, every page tested.
 *
 * Process variation is modelled as a per-block lognormal quality factor
 * multiplying the V_TH state sigmas; wafer-level correlation adds a
 * shared per-chip component. RBER statistics over the population are
 * computed analytically per block and, where the paper counts discrete
 * errors (the ESP zero-error campaigns), by Poisson-sampling error
 * counts from the analytic rates — statistically faithful to per-cell
 * Monte Carlo at a tiny fraction of the cost.
 */

#ifndef FCOS_RELIABILITY_CHIP_FARM_H
#define FCOS_RELIABILITY_CHIP_FARM_H

#include <cstdint>
#include <vector>

#include "reliability/vth_model.h"
#include "util/rng.h"

namespace fcos::rel {

class ChipFarm
{
  public:
    struct Config
    {
        std::uint32_t chips = 160;
        std::uint32_t blocksPerChip = 120;
        std::uint32_t wafers = 5;
        /** Bits tested per wordline (16-KiB page). */
        std::uint64_t bitsPerWordline = 16ULL * 1024 * 8;
        /** Wordlines per tested block (Table 1: 4 x 48). */
        std::uint32_t wordlinesPerBlock = 192;
        std::uint64_t seed = 42;
        VthParams vth{};
    };

    /** Construct with the paper's default population. */
    ChipFarm();
    explicit ChipFarm(const Config &cfg);

    const Config &config() const { return cfg_; }
    const VthModel &model() const { return model_; }

    /** Number of (chip, block) pairs under test. */
    std::size_t blockCount() const { return qualities_.size(); }

    /** Sigma multiplier of block @p index. */
    double blockQuality(std::size_t index) const;

    /** Total wordlines under test (paper: 3,686,400). */
    std::uint64_t totalWordlines() const;

    /**
     * Population-average RBER for a programming mode and condition
     * (one point of Figure 8).
     */
    double averageRber(nand::ProgramMode mode,
                       const OperatingCondition &cond) const;

    /** Worst/median/best-block RBER of ESP at @p esp_factor
     *  (one x-value of Figure 11). */
    struct EspPoint
    {
        double worst, median, best;
    };
    EspPoint espRber(double esp_factor,
                     const OperatingCondition &cond) const;

    /**
     * Error-count campaign: read @p total_bits spread uniformly over
     * the population's blocks with the given per-page mode, drawing
     * discrete error counts. Reproduces the paper's ">4.83e11 bits,
     * zero errors" ESP validation.
     */
    struct Campaign
    {
        std::uint64_t bits = 0;
        std::uint64_t errors = 0;
        double expectedErrors = 0.0;
        /** Statistical RBER bound 1/bits when errors == 0. */
        double rberBound() const
        {
            return bits ? 1.0 / static_cast<double>(bits) : 0.0;
        }
    };
    Campaign runCampaign(const nand::PageMeta &meta,
                         const OperatingCondition &cond,
                         std::uint64_t total_bits,
                         std::uint64_t seed = 7) const;

  private:
    double blockRber(nand::ProgramMode mode, double esp_factor,
                     const OperatingCondition &cond,
                     std::size_t index) const;

    Config cfg_;
    VthModel model_;
    std::vector<double> qualities_;
};

} // namespace fcos::rel

#endif // FCOS_RELIABILITY_CHIP_FARM_H
