/**
 * @file
 * Threshold-voltage (V_TH) reliability model (paper Sections 2.2, 3.2,
 * 4.2 and 5.2).
 *
 * Each cell state is a Gaussian V_TH distribution inside the chip's
 * voltage window. Error mechanisms move and widen the states:
 *
 *  - retention loss   : programmed states drift down over log-time,
 *                       scaled by P/E wear (charge leaks through the
 *                       damaged tunnel oxide);
 *  - disturbance /    : the erased state drifts up with reads and
 *    program interference  neighbour programming;
 *  - P/E cycling      : widens every state;
 *  - no randomization : worst-case data patterns amplify cell-to-cell
 *                       interference, widening states; the effect is
 *                       stronger in MLC mode (more program steps and
 *                       tighter margins), which is how the paper's
 *                       1.91x (SLC) and 4.92x (MLC) factors arise.
 *
 * The read reference sits at the noise-weighted midpoint of adjacent
 * states (modern controllers track the optimal read level via read
 * retry), so raw bit errors come from margin shrink and sigma growth.
 *
 * ESP (Section 4.2) adds ISPP steps with a raised target voltage and a
 * finer step: the paper's Figure 11 shows the resulting RBER gain is
 * extremely convex in tESP — one decade at tESP = 1.6x tPROG but
 * observed-zero errors (RBER < 2.07e-12) at 1.9x. We therefore model
 * the ESP gain directly in log-RBER space with a power-law fitted
 * through exactly those two anchors (see kEspDecades/kEspExp).
 *
 * All constants live in VthParams and are exercised by the calibration
 * test (tests/reliability/calibration_test.cc) that pins the paper's
 * quoted anchors.
 */

#ifndef FCOS_RELIABILITY_VTH_MODEL_H
#define FCOS_RELIABILITY_VTH_MODEL_H

#include <cstdint>
#include <vector>

#include "nand/cell_array.h"
#include "nand/config.h"

namespace fcos::rel {

/** Wear / retention / pattern conditions of a read. */
struct OperatingCondition
{
    std::uint32_t pec = 0;        ///< program/erase cycles
    double retentionMonths = 0.0; ///< time since program (30 C equiv.)
    bool randomized = false;      ///< data randomizer enabled?
};

/** Model constants; defaults reproduce the paper's anchors. */
struct VthParams
{
    // --- State placement (volts) ---
    double erasedMean = -2.0;
    double slcProgMean = 2.5;
    double slcSigma = 0.31;
    double mlcMeans[4] = {-2.0, 0.9, 2.25, 3.6}; ///< 11,01,00,10 (Gray)
    double mlcSigma = 0.225;
    /** TLC: erased + P1..P7 across the same window (native mode of
     *  the characterized 48-layer chips). */
    double tlcMeans[8] = {-2.0, 0.4, 1.05, 1.7, 2.35, 3.0, 3.65, 4.3};
    double tlcSigma = 0.16;

    // --- Degradation terms ---
    /** PEC saturation: pecTerm = (pec/1e4)^kPecExp. */
    double kPecExp = 0.20;
    /** Retention shift = kRet*(kRetFloor + (1-kRetFloor)*pecTerm)
     *                    * ln(1 + months/kRetTauMonths). */
    double kRetSlc = 0.355;
    double kRetMlc = 0.05;
    double kRetFloor = 0.25;
    double kRetTauMonths = 0.25;
    /** Erased-state disturb shift = kDist*(kDistFloor + ...*pecTerm). */
    double kDistSlc = 0.72;
    double kDistMlc = 0.55;
    double kDistFloor = 0.30;
    /** Sigma growth: sigma *= 1 + kWearSigma * pecTerm. */
    double kWearSigmaSlc = 0.30;
    double kWearSigmaMlc = 0.10;
    /** Pattern factors: sigma multiplier without randomization. */
    double kPatternSigmaSlc = 1.075;
    double kPatternSigmaMlc = 1.32;

    // --- ESP gain (Figure 11 fit) ---
    /** RBER decades removed: kEspDecades * (f-1)^kEspExp, f=tESP/tPROG. */
    double kEspDecades = 18.5;
    double kEspExp = 5.42;

    /** Per-block quality spread (lognormal sigma of the multiplier on
     *  state sigmas); models process variation across blocks/chips. */
    double blockQualitySigma = 0.06;
};

/**
 * Analytic RBER computation for every mode the paper characterizes.
 * @p quality is the per-block sigma multiplier (1.0 = typical block).
 */
class VthModel
{
  public:
    explicit VthModel(VthParams params = VthParams{}) : p_(params) {}

    const VthParams &params() const { return p_; }

    /** RBER of regular SLC-mode programming (Fig. 8(a)). */
    double rberSlc(const OperatingCondition &cond,
                   double quality = 1.0) const;

    /** RBER of MLC-mode programming, averaged over LSB/MSB pages
     *  (Fig. 8(b)). */
    double rberMlc(const OperatingCondition &cond,
                   double quality = 1.0) const;

    /**
     * RBER of the LSB page alone in MLC mode (Section 9, footnote 15):
     * an LSB read senses only the V_REF2 boundary between P1 and P2 —
     * mechanically an SLC-style read — so storing Flash-Cosmos
     * operands in LSB pages gives ParaBit-level (not ESP-level)
     * reliability on MLC parts.
     */
    double rberMlcLsb(const OperatingCondition &cond,
                      double quality = 1.0) const;

    /**
     * RBER of native TLC-mode programming (3 bits/cell, 8 states),
     * averaged over the three pages of a wordline. TLC is the mode
     * used to accumulate P/E stress in the characterization
     * (Section 5.1) and the densest mode the capacity comparison of
     * Section 8.3 refers to.
     */
    double rberTlc(const OperatingCondition &cond,
                   double quality = 1.0) const;

    /**
     * RBER of ESP with extension factor @p esp_factor = tESP/tPROG in
     * [1, 2] (Fig. 11). ESP data is stored without randomization.
     */
    double rberEsp(double esp_factor, const OperatingCondition &cond,
                   double quality = 1.0) const;

    /** Dispatch on a page's programming metadata. */
    double rberFor(const nand::PageMeta &meta,
                   const OperatingCondition &cond,
                   double quality = 1.0) const;

    /** SLC state means/sigma and optimal read reference (for plots and
     *  distribution-level tests). */
    struct SlcStates
    {
        double erasedMean, erasedSigma;
        double progMean, progSigma;
        double readRef;
    };
    SlcStates slcStates(const OperatingCondition &cond,
                        double quality = 1.0) const;

  private:
    double pecTerm(std::uint32_t pec) const;
    double retentionShift(double k_ret, const OperatingCondition &c) const;
    double disturbShift(double k_dist, const OperatingCondition &c) const;

    VthParams p_;
};

} // namespace fcos::rel

#endif // FCOS_RELIABILITY_VTH_MODEL_H
