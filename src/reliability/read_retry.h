/**
 * @file
 * Read-retry reference-voltage optimization.
 *
 * Modern controllers re-read pages at shifted reference voltages
 * until ECC succeeds, effectively tracking the optimal V_REF as the
 * states drift (the paper cites this line of work [64] and its
 * characterization reads at tuned references). VthModel's analytic
 * RBER assumes that optimum; this module makes the assumption
 * explicit and testable:
 *
 *  - rberSlcAtRef() evaluates the RBER at an arbitrary reference;
 *  - optimalSlcRef() recovers the best reference by golden-section
 *    search, which must agree with the model's noise-weighted
 *    midpoint;
 *  - the gap between "factory default" and optimal reference shows
 *    why read-retry exists (errors grow one-sidedly as retention
 *    pulls the programmed state down).
 */

#ifndef FCOS_RELIABILITY_READ_RETRY_H
#define FCOS_RELIABILITY_READ_RETRY_H

#include "reliability/vth_model.h"

namespace fcos::rel {

class ReadRetry
{
  public:
    /** SLC RBER when reading at reference voltage @p vref. */
    static double rberSlcAtRef(const VthModel &model,
                               const OperatingCondition &cond,
                               double vref, double quality = 1.0);

    /** Best reference for the given condition (golden-section). */
    static double optimalSlcRef(const VthModel &model,
                                const OperatingCondition &cond,
                                double quality = 1.0);

    /**
     * Number of retry steps a controller starting from the pristine
     * default reference needs to come within @p tolerance of the
     * optimal reference, stepping by @p step_volts per retry.
     */
    static unsigned retryStepsNeeded(const VthModel &model,
                                     const OperatingCondition &cond,
                                     double step_volts = 0.1,
                                     double tolerance = 0.05);
};

} // namespace fcos::rel

#endif // FCOS_RELIABILITY_READ_RETRY_H
