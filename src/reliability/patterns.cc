#include "reliability/patterns.h"

#include <bit>

#include "util/log.h"

namespace fcos::rel {

std::vector<BitVector>
worstCaseMwsPattern(std::uint32_t wordlines, std::size_t page_bits,
                    std::uint64_t target_mask, Rng &rng)
{
    fcos_assert(wordlines >= 1 && wordlines <= 64,
                "string length %u out of range", wordlines);
    fcos_assert(target_mask != 0, "no target wordlines");
    fcos_assert((target_mask >> wordlines) == 0,
                "target mask beyond string length");

    std::vector<std::uint32_t> targets;
    for (std::uint32_t wl = 0; wl < wordlines; ++wl) {
        if (target_mask & (1ULL << wl))
            targets.push_back(wl);
    }

    std::vector<BitVector> pages(wordlines, BitVector(page_bits, false));
    for (std::size_t bl = 0; bl < page_bits; ++bl) {
        // Per string: at most one '1' cell, and only on a target
        // wordline (roughly half the strings get one).
        if (rng.bernoulli(0.5)) {
            std::uint32_t wl = targets[static_cast<std::size_t>(
                rng.nextBounded(targets.size()))];
            pages[wl].set(bl, true);
        }
    }
    return pages;
}

bool
satisfiesWorstCaseConstraints(const std::vector<BitVector> &pages,
                              std::uint64_t target_mask)
{
    if (pages.empty())
        return false;
    std::size_t page_bits = pages[0].size();
    for (const BitVector &p : pages) {
        if (p.size() != page_bits)
            return false;
    }
    for (std::size_t bl = 0; bl < page_bits; ++bl) {
        int ones = 0;
        for (std::uint32_t wl = 0; wl < pages.size(); ++wl) {
            if (pages[wl].get(bl)) {
                ++ones;
                if (!(target_mask & (1ULL << wl)))
                    return false; // '1' on a non-target wordline
            }
        }
        if (ones >= 2)
            return false; // the "< 2 ones per string" constraint
    }
    return true;
}

} // namespace fcos::rel
