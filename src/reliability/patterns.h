/**
 * @file
 * Characterization data patterns (paper Section 5.1/5.2).
 *
 * The paper stresses chips with two adversarial patterns:
 *
 *  - the *checkered* pattern — adjacent cells alternate between the
 *    highest and lowest V_TH state — worst case for program disturb
 *    and interference (used to accumulate P/E wear; available as
 *    BitVector::fillCheckered);
 *
 *  - the *MWS worst-case* pattern, which maximizes NAND-string
 *    resistance during multi-wordline sensing: per string (bitline
 *    column), fewer than two cells store '1', and if a string has a
 *    '1' cell it sits on one of the MWS target wordlines. This makes
 *    the sensed current path as weak as possible, bounding tMWS.
 */

#ifndef FCOS_RELIABILITY_PATTERNS_H
#define FCOS_RELIABILITY_PATTERNS_H

#include <cstdint>
#include <vector>

#include "util/bitvector.h"
#include "util/rng.h"

namespace fcos::rel {

/**
 * Generate per-wordline page data for one NAND string set under the
 * MWS worst-case constraints.
 *
 * @param wordlines   string length (pages returned, index = wordline)
 * @param page_bits   bitline count
 * @param target_mask which wordlines the MWS will sense
 * @param rng         random source (which target holds the '1')
 * @return one page per wordline
 */
std::vector<BitVector> worstCaseMwsPattern(std::uint32_t wordlines,
                                           std::size_t page_bits,
                                           std::uint64_t target_mask,
                                           Rng &rng);

/**
 * Check the Section 5.2 constraints on a string set's contents:
 * fewer than two '1' cells per string, all of them on target
 * wordlines. Used by tests and by the characterization benches.
 */
bool satisfiesWorstCaseConstraints(const std::vector<BitVector> &pages,
                                   std::uint64_t target_mask);

} // namespace fcos::rel

#endif // FCOS_RELIABILITY_PATTERNS_H
