#include "reliability/vth_model.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"
#include "util/mathutil.h"

namespace fcos::rel {

namespace {

/** Gray-code bit patterns of the four MLC states E,P1,P2,P3. */
constexpr std::uint8_t kMlcGray[4] = {0b11, 0b01, 0b00, 0b10};

/** 3-bit Gray map of the eight TLC states E,P1..P7 (2-3-2 coding). */
constexpr std::uint8_t kTlcGray[8] = {0b111, 0b110, 0b100, 0b101,
                                      0b001, 0b000, 0b010, 0b011};

int
hamming2(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t x = a ^ b;
    return (x & 1) + ((x >> 1) & 1) + ((x >> 2) & 1);
}

/**
 * Average RBER of equiprobable Gaussian states read against
 * noise-weighted midpoint references, with Gray penalties.
 */
double
multiStateRber(const std::vector<double> &means,
               const std::vector<double> &sigmas,
               const std::uint8_t *codes, int bits_per_cell)
{
    std::size_t s_count = means.size();
    // References between adjacent states, weighted so both neighbours
    // see the same z-score (optimal read level).
    std::vector<double> refs(s_count - 1);
    for (std::size_t i = 0; i + 1 < s_count; ++i) {
        refs[i] = (means[i] * sigmas[i + 1] + means[i + 1] * sigmas[i]) /
                  (sigmas[i] + sigmas[i + 1]);
    }
    double rber = 0.0;
    for (std::size_t s = 0; s < s_count; ++s) {
        // Probability of landing in region r (between refs r-1 and r).
        for (std::size_t r = 0; r < s_count; ++r) {
            if (r == s)
                continue;
            double lo = (r == 0)
                            ? -1e9
                            : (refs[r - 1] - means[s]) / sigmas[s];
            double hi = (r + 1 == s_count)
                            ? 1e9
                            : (refs[r] - means[s]) / sigmas[s];
            double prob = gaussianQ(lo) - gaussianQ(hi);
            if (prob <= 0.0)
                continue;
            rber += prob * hamming2(codes[s], codes[r]) /
                    static_cast<double>(bits_per_cell);
        }
    }
    return rber / static_cast<double>(s_count);
}

} // namespace

double
VthModel::pecTerm(std::uint32_t pec) const
{
    if (pec == 0)
        return 0.0;
    return std::pow(static_cast<double>(pec) / 1e4, p_.kPecExp);
}

double
VthModel::retentionShift(double k_ret, const OperatingCondition &c) const
{
    double wear = p_.kRetFloor + (1.0 - p_.kRetFloor) * pecTerm(c.pec);
    return k_ret * wear * std::log1p(c.retentionMonths / p_.kRetTauMonths);
}

double
VthModel::disturbShift(double k_dist, const OperatingCondition &c) const
{
    double wear = p_.kDistFloor + (1.0 - p_.kDistFloor) * pecTerm(c.pec);
    return k_dist * wear;
}

VthModel::SlcStates
VthModel::slcStates(const OperatingCondition &cond, double quality) const
{
    double sigma_mult = (1.0 + p_.kWearSigmaSlc * pecTerm(cond.pec)) *
                        (cond.randomized ? 1.0 : p_.kPatternSigmaSlc) *
                        quality;
    SlcStates s;
    s.erasedMean = p_.erasedMean + disturbShift(p_.kDistSlc, cond);
    s.erasedSigma = p_.slcSigma * sigma_mult;
    s.progMean = p_.slcProgMean - retentionShift(p_.kRetSlc, cond);
    s.progSigma = p_.slcSigma * sigma_mult;
    s.readRef = (s.erasedMean * s.progSigma + s.progMean * s.erasedSigma) /
                (s.erasedSigma + s.progSigma);
    return s;
}

double
VthModel::rberSlc(const OperatingCondition &cond, double quality) const
{
    SlcStates s = slcStates(cond, quality);
    // Encoding: erased = '1', programmed = '0' (one bit per cell).
    std::vector<double> means{s.erasedMean, s.progMean};
    std::vector<double> sigmas{s.erasedSigma, s.progSigma};
    static constexpr std::uint8_t codes[2] = {1, 0};
    return multiStateRber(means, sigmas, codes, 1);
}

double
VthModel::rberMlc(const OperatingCondition &cond, double quality) const
{
    double sigma_mult = (1.0 + p_.kWearSigmaMlc * pecTerm(cond.pec)) *
                        (cond.randomized ? 1.0 : p_.kPatternSigmaMlc) *
                        quality;
    double ret = retentionShift(p_.kRetMlc, cond);
    double dist = disturbShift(p_.kDistMlc, cond);

    std::vector<double> means(4), sigmas(4);
    for (int s = 0; s < 4; ++s) {
        // Retention loss scales with stored charge (state level).
        double level = static_cast<double>(s) / 3.0;
        means[s] = p_.mlcMeans[s] - ret * level * 3.0;
        if (s == 0)
            means[s] += dist; // disturbance raises the erased state
        sigmas[s] = p_.mlcSigma * sigma_mult;
    }
    return multiStateRber(means, sigmas, kMlcGray, 2);
}

double
VthModel::rberTlc(const OperatingCondition &cond, double quality) const
{
    // TLC stresses the same mechanisms as MLC but with eight states in
    // the window; pattern sensitivity matches the MLC factor (both are
    // multi-level ISPP sequences).
    double sigma_mult = (1.0 + p_.kWearSigmaMlc * pecTerm(cond.pec)) *
                        (cond.randomized ? 1.0 : p_.kPatternSigmaMlc) *
                        quality;
    double ret = retentionShift(p_.kRetMlc, cond);
    double dist = disturbShift(p_.kDistMlc, cond);

    std::vector<double> means(8), sigmas(8);
    for (int s = 0; s < 8; ++s) {
        double level = static_cast<double>(s) / 7.0;
        means[s] = p_.tlcMeans[s] - ret * level * 3.0;
        if (s == 0)
            means[s] += dist;
        sigmas[s] = p_.tlcSigma * sigma_mult;
    }
    return multiStateRber(means, sigmas, kTlcGray, 3);
}

double
VthModel::rberMlcLsb(const OperatingCondition &cond, double quality) const
{
    double sigma_mult = (1.0 + p_.kWearSigmaMlc * pecTerm(cond.pec)) *
                        (cond.randomized ? 1.0 : p_.kPatternSigmaMlc) *
                        quality;
    double ret = retentionShift(p_.kRetMlc, cond);
    double dist = disturbShift(p_.kDistMlc, cond);

    std::vector<double> means(4), sigmas(4);
    for (int s = 0; s < 4; ++s) {
        double level = static_cast<double>(s) / 3.0;
        means[s] = p_.mlcMeans[s] - ret * level * 3.0;
        if (s == 0)
            means[s] += dist;
        sigmas[s] = p_.mlcSigma * sigma_mult;
    }
    // LSB Gray codes: E=1, P1=1, P2=0, P3=0; only the V_REF2 boundary
    // (between P1 and P2) matters, as in an SLC read.
    double ref =
        (means[1] * sigmas[2] + means[2] * sigmas[1]) /
        (sigmas[1] + sigmas[2]);
    double rber = 0.0;
    for (int s = 0; s < 4; ++s) {
        bool lsb_one = (s <= 1);
        double z = lsb_one ? (ref - means[s]) / sigmas[s]
                           : (means[s] - ref) / sigmas[s];
        rber += 0.25 * gaussianQ(z);
    }
    return rber;
}

double
VthModel::rberEsp(double esp_factor, const OperatingCondition &cond,
                  double quality) const
{
    fcos_assert(esp_factor >= 1.0 && esp_factor <= 2.5,
                "ESP factor %g out of range", esp_factor);
    // Base: regular SLC programming of the same (non-randomized) data.
    OperatingCondition base_cond = cond;
    base_cond.randomized = false;
    double base = rberSlc(base_cond, quality);
    double decades =
        p_.kEspDecades * std::pow(esp_factor - 1.0, p_.kEspExp);
    return base * std::pow(10.0, -decades);
}

double
VthModel::rberFor(const nand::PageMeta &meta,
                  const OperatingCondition &cond, double quality) const
{
    OperatingCondition c = cond;
    c.randomized = meta.randomized;
    switch (meta.mode) {
      case nand::ProgramMode::SlcRegular:
        return rberSlc(c, quality);
      case nand::ProgramMode::SlcEsp:
        return rberEsp(meta.espFactor, c, quality);
      case nand::ProgramMode::Mlc:
        return rberMlc(c, quality);
      case nand::ProgramMode::Tlc:
        return rberTlc(c, quality);
    }
    fcos_panic("unknown program mode");
}

} // namespace fcos::rel
