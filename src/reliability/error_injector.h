/**
 * @file
 * Bridges the analytic V_TH model into the functional NAND chip:
 * flips sensed bits with the page's analytic RBER.
 *
 * Per DESIGN.md's scale strategy, the injector draws the *number* of
 * errors per page from Binomial(page_bits, rber) and then picks
 * positions uniformly — statistically identical to per-cell Bernoulli
 * trials but O(errors) instead of O(bits). Sampling is deterministic in
 * (seed, page): repeated campaigns reproduce exactly.
 */

#ifndef FCOS_RELIABILITY_ERROR_INJECTOR_H
#define FCOS_RELIABILITY_ERROR_INJECTOR_H

#include <atomic>
#include <cstdint>

#include "nand/cell_array.h"
#include "reliability/vth_model.h"
#include "util/rng.h"

namespace fcos::rel {

class VthErrorInjector : public nand::ErrorInjector
{
  public:
    /**
     * @param model    analytic reliability model
     * @param cond     operating condition applied to all reads
     * @param quality  per-block sigma multiplier
     * @param seed     base seed for deterministic sampling
     */
    VthErrorInjector(const VthModel &model, OperatingCondition cond,
                     double quality = 1.0, std::uint64_t seed = 1)
        : model_(model), cond_(cond), quality_(quality), base_seed_(seed)
    {}

    /** Update the operating condition (e.g. ageing between reads). */
    void setCondition(const OperatingCondition &cond) { cond_ = cond; }
    const OperatingCondition &condition() const { return cond_; }

    void setQuality(double q) { quality_ = q; }

    /** Total bit errors injected so far (campaign bookkeeping). */
    std::uint64_t injectedErrors() const { return injected_.load(); }

    /** Total bits sensed through the injector. */
    std::uint64_t sensedBits() const { return sensed_bits_.load(); }

    void inject(BitVector &bits, const nand::PageMeta &meta,
                std::uint64_t seed) override;

  private:
    const VthModel &model_;
    OperatingCondition cond_;
    double quality_;
    std::uint64_t base_seed_;
    /** inject() runs in the engine's parallel worker phase; the flip
     *  pattern is a pure function of (seed, page) so the only shared
     *  state is these commutative tallies — atomics keep them exact
     *  under any worker count. */
    std::atomic<std::uint64_t> injected_{0};
    std::atomic<std::uint64_t> sensed_bits_{0};
};

} // namespace fcos::rel

#endif // FCOS_RELIABILITY_ERROR_INJECTOR_H
