/**
 * @file
 * Binary BCH error-correcting code over GF(2^m).
 *
 * Modern SSDs protect every page with strong ECC (the paper cites LDPC;
 * BCH is the classic hard-decision workhorse with the same relevant
 * property: codewords are *linear in GF(2)* — closed under XOR — but
 * NOT closed under AND/OR). This codec exists for two reasons:
 *
 *  1. Substrate completeness: the OSP/ISP baselines read ECC-protected
 *     data; the SSD model charges decode work to the controller.
 *  2. Section 3.2's argument, made executable: AND-ing two valid
 *     codewords inside the flash array yields a word that decodes to
 *     the wrong payload (or fails outright), which is why ParaBit
 *     cannot keep ECC and why Flash-Cosmos needs ESP's zero-error
 *     storage instead. See bench/ablation_ecc_randomization.
 *
 * Implementation: standard table-driven GF(2^m) arithmetic, generator
 * polynomial from the LCM of minimal polynomials of alpha^1..alpha^2t,
 * systematic encoding, and syndrome / Berlekamp-Massey / Chien-search
 * decoding.
 */

#ifndef FCOS_RELIABILITY_BCH_H
#define FCOS_RELIABILITY_BCH_H

#include <cstdint>
#include <vector>

#include "util/bitvector.h"

namespace fcos::rel {

/** GF(2^m) arithmetic with log/antilog tables. */
class GaloisField
{
  public:
    /** @param m  field degree, 3..14. */
    explicit GaloisField(unsigned m);

    unsigned m() const { return m_; }
    /** Field size minus one == multiplicative order of alpha. */
    unsigned n() const { return n_; }

    unsigned mul(unsigned a, unsigned b) const;
    unsigned div(unsigned a, unsigned b) const;
    unsigned inv(unsigned a) const;
    /** alpha^e with e taken mod n (e may exceed n). */
    unsigned alphaPow(unsigned e) const { return antilog_[e % n_]; }
    /** Discrete log base alpha; a must be non-zero. */
    unsigned logAlpha(unsigned a) const;

  private:
    unsigned m_;
    unsigned n_;
    std::vector<unsigned> log_;
    std::vector<unsigned> antilog_;
};

/** Outcome of a decode attempt. */
struct BchDecodeResult
{
    /** True when the word was accepted (zero or correctable errors). */
    bool ok = false;
    /** Number of bit corrections applied. */
    unsigned corrected = 0;
};

class BchCode
{
  public:
    /**
     * @param m  GF degree; codeword length n = 2^m - 1
     * @param t  guaranteed correctable errors per codeword
     */
    BchCode(unsigned m, unsigned t);

    unsigned n() const { return gf_.n(); }
    unsigned k() const { return k_; }
    unsigned t() const { return t_; }
    unsigned parityBits() const { return n() - k(); }

    /**
     * Systematic encode: @p data (k bits) -> codeword (n bits) with the
     * data in positions [parityBits, n).
     */
    BitVector encode(const BitVector &data) const;

    /**
     * Decode @p word (n bits) in place. Returns ok=false when more than
     * t errors are detected (decode failure); the word may then be
     * partially modified — callers treat it as lost.
     */
    BchDecodeResult decode(BitVector &word) const;

    /** Extract the systematic data bits from a codeword. */
    BitVector extractData(const BitVector &word) const;

    /** Generator polynomial coefficients, g[0] = constant term. */
    const std::vector<std::uint8_t> &generator() const { return gen_; }

  private:
    std::vector<unsigned> syndromes(const BitVector &word) const;

    GaloisField gf_;
    unsigned t_;
    unsigned k_;
    std::vector<std::uint8_t> gen_;
};

/**
 * Page-level codec: chops a page payload into k-bit chunks, protecting
 * each with one BCH codeword. Mirrors how SSD controllers protect
 * 16-KiB pages with per-1-KiB codewords.
 */
class PageCodec
{
  public:
    explicit PageCodec(BchCode code) : code_(std::move(code)) {}

    const BchCode &code() const { return code_; }

    /** Encoded size (bits) for a @p data_bits payload. */
    std::size_t encodedBits(std::size_t data_bits) const;

    /** Encode a payload of any size (last chunk zero-padded). */
    BitVector encodePage(const BitVector &data) const;

    /**
     * Decode an encoded page. @p data_bits is the original payload
     * length. ok=false when any chunk fails.
     */
    BchDecodeResult decodePage(const BitVector &encoded,
                               std::size_t data_bits,
                               BitVector *data_out) const;

  private:
    BchCode code_;
};

} // namespace fcos::rel

#endif // FCOS_RELIABILITY_BCH_H
