#include "reliability/read_retry.h"

#include <cmath>

#include "util/log.h"
#include "util/mathutil.h"

namespace fcos::rel {

double
ReadRetry::rberSlcAtRef(const VthModel &model,
                        const OperatingCondition &cond, double vref,
                        double quality)
{
    VthModel::SlcStates s = model.slcStates(cond, quality);
    // Erased cells reading '0': V_TH above the reference.
    double erased_err = gaussianQ((vref - s.erasedMean) / s.erasedSigma);
    // Programmed cells reading '1': V_TH below the reference.
    double prog_err = gaussianQ((s.progMean - vref) / s.progSigma);
    return 0.5 * (erased_err + prog_err);
}

double
ReadRetry::optimalSlcRef(const VthModel &model,
                         const OperatingCondition &cond, double quality)
{
    VthModel::SlcStates s = model.slcStates(cond, quality);
    double lo = s.erasedMean, hi = s.progMean;
    // Golden-section search on the (unimodal) RBER curve.
    const double phi = 0.6180339887498949;
    double a = lo, b = hi;
    double c = b - phi * (b - a);
    double d = a + phi * (b - a);
    for (int i = 0; i < 120; ++i) {
        if (rberSlcAtRef(model, cond, c, quality) <
            rberSlcAtRef(model, cond, d, quality)) {
            b = d;
        } else {
            a = c;
        }
        c = b - phi * (b - a);
        d = a + phi * (b - a);
    }
    return 0.5 * (a + b);
}

unsigned
ReadRetry::retryStepsNeeded(const VthModel &model,
                            const OperatingCondition &cond,
                            double step_volts, double tolerance)
{
    fcos_assert(step_volts > 0.0 && tolerance >= 0.0,
                "bad retry parameters");
    // The factory default is the optimum of the pristine device.
    double start =
        model.slcStates(OperatingCondition{0, 0.0, cond.randomized})
            .readRef;
    double target = optimalSlcRef(model, cond);
    double distance = std::abs(target - start);
    if (distance <= tolerance)
        return 0;
    return static_cast<unsigned>(
        std::ceil((distance - tolerance) / step_volts));
}

} // namespace fcos::rel
