#include "reliability/randomizer.h"

namespace fcos::rel {

namespace {

/** splitmix64: cheap, well-distributed keystream generator. */
std::uint64_t
mix(std::uint64_t z)
{
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
Randomizer::keystreamWord(std::uint64_t page_key, std::size_t idx) const
{
    return mix(device_seed_ ^ mix(page_key) ^
               (0xA5A5A5A5A5A5A5A5ULL * (idx + 1)));
}

void
Randomizer::apply(BitVector &page, std::uint64_t page_key) const
{
    auto &words = page.words();
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] ^= keystreamWord(page_key, i);
    // Keep the tail invariant: re-zero bits beyond size().
    if (page.size() & 63)
        words.back() &= (~0ULL) >> (64 - (page.size() & 63));
}

} // namespace fcos::rel
