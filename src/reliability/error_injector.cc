#include "reliability/error_injector.h"

#include <unordered_set>

namespace fcos::rel {

void
VthErrorInjector::inject(BitVector &bits, const nand::PageMeta &meta,
                         std::uint64_t seed)
{
    sensed_bits_.fetch_add(bits.size(), std::memory_order_relaxed);
    double p = model_.rberFor(meta, cond_, quality_);
    if (p <= 0.0)
        return;
    Rng rng = Rng::seeded(base_seed_).fork(seed);
    std::uint64_t flips = rng.binomial(bits.size(), p);
    // Distinct positions: a duplicate draw would un-flip the bit and
    // understate the error count at high rates.
    std::unordered_set<std::size_t> flipped;
    flipped.reserve(flips);
    while (flipped.size() < flips) {
        std::size_t pos = static_cast<std::size_t>(
            rng.nextBounded(bits.size()));
        if (flipped.insert(pos).second)
            bits.set(pos, !bits.get(pos));
    }
    injected_.fetch_add(flips, std::memory_order_relaxed);
}

} // namespace fcos::rel
