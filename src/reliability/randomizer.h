/**
 * @file
 * Data randomizer (paper Section 2.2).
 *
 * Modern SSD controllers XOR page data with a pseudo-random keystream
 * (seeded per physical page) before programming, to avoid worst-case
 * program-disturb patterns, and XOR again after reading to recover the
 * data. Because the scrambling is an XOR involution,
 * derandomize(randomize(x)) == x.
 *
 * Crucially for this paper (Section 3.2): bitwise AND/OR performed *on
 * the randomized cells* does not commute with the XOR keystream —
 * derandomize(randomize(A) AND randomize(B)) != A AND B in general —
 * which is why ParaBit must disable randomization and why Flash-Cosmos
 * pairs MWS with ESP instead. The ablation bench
 * (bench/ablation_ecc_randomization) demonstrates this directly.
 */

#ifndef FCOS_RELIABILITY_RANDOMIZER_H
#define FCOS_RELIABILITY_RANDOMIZER_H

#include <cstdint>

#include "util/bitvector.h"

namespace fcos::rel {

class Randomizer
{
  public:
    explicit Randomizer(std::uint64_t device_seed = 0x5EED5EEDULL)
        : device_seed_(device_seed)
    {}

    /**
     * XOR @p page with the keystream of physical page @p page_key.
     * Applying the same call twice restores the original data.
     */
    void apply(BitVector &page, std::uint64_t page_key) const;

    /** Keystream word @p idx for page @p page_key (tests). */
    std::uint64_t keystreamWord(std::uint64_t page_key,
                                std::size_t idx) const;

  private:
    std::uint64_t device_seed_;
};

} // namespace fcos::rel

#endif // FCOS_RELIABILITY_RANDOMIZER_H
