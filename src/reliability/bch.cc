#include "reliability/bch.h"

#include <algorithm>
#include <set>

#include "util/log.h"

namespace fcos::rel {

namespace {

/** Primitive polynomials (bit i = coefficient of x^i). */
unsigned
primitivePoly(unsigned m)
{
    switch (m) {
      case 3:
        return 0x0B; // x^3+x+1
      case 4:
        return 0x13; // x^4+x+1
      case 5:
        return 0x25; // x^5+x^2+1
      case 6:
        return 0x43; // x^6+x+1
      case 7:
        return 0x89; // x^7+x^3+1
      case 8:
        return 0x11D; // x^8+x^4+x^3+x^2+1
      case 9:
        return 0x211; // x^9+x^4+1
      case 10:
        return 0x409; // x^10+x^3+1
      case 11:
        return 0x805; // x^11+x^2+1
      case 12:
        return 0x1053; // x^12+x^6+x^4+x+1
      case 13:
        return 0x201B; // x^13+x^4+x^3+x+1
      case 14:
        return 0x402B; // x^14+x^5+x^3+x+1
      default:
        fcos_fatal("unsupported GF degree m=%u (need 3..14)", m);
    }
}

/** Multiply binary polynomials (coefficients in GF(2)). */
std::vector<std::uint8_t>
polyMulGf2(const std::vector<std::uint8_t> &a,
           const std::vector<std::uint8_t> &b)
{
    std::vector<std::uint8_t> out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i])
            continue;
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= b[j];
    }
    return out;
}

} // namespace

GaloisField::GaloisField(unsigned m) : m_(m), n_((1u << m) - 1)
{
    fcos_assert(m >= 3 && m <= 14, "GF degree %u out of range", m);
    log_.assign(n_ + 1, 0);
    antilog_.assign(n_, 0);
    unsigned poly = primitivePoly(m);
    unsigned x = 1;
    for (unsigned i = 0; i < n_; ++i) {
        antilog_[i] = x;
        log_[x] = i;
        x <<= 1;
        if (x & (1u << m))
            x ^= poly;
    }
}

unsigned
GaloisField::mul(unsigned a, unsigned b) const
{
    if (a == 0 || b == 0)
        return 0;
    return antilog_[(log_[a] + log_[b]) % n_];
}

unsigned
GaloisField::div(unsigned a, unsigned b) const
{
    fcos_assert(b != 0, "GF division by zero");
    if (a == 0)
        return 0;
    return antilog_[(log_[a] + n_ - log_[b]) % n_];
}

unsigned
GaloisField::inv(unsigned a) const
{
    fcos_assert(a != 0, "GF inverse of zero");
    return antilog_[(n_ - log_[a]) % n_];
}

unsigned
GaloisField::logAlpha(unsigned a) const
{
    fcos_assert(a != 0 && a <= n_, "log of invalid element %u", a);
    return log_[a];
}

BchCode::BchCode(unsigned m, unsigned t) : gf_(m), t_(t)
{
    fcos_assert(t >= 1, "BCH needs t >= 1");
    // Generator = LCM of minimal polynomials of alpha^1 .. alpha^(2t).
    std::set<unsigned> covered; // exponents already in some cyclotomic coset
    gen_ = {1};
    for (unsigned i = 1; i <= 2 * t; ++i) {
        if (covered.count(i % gf_.n()))
            continue;
        // Cyclotomic coset of i: {i, 2i, 4i, ...} mod n.
        std::vector<unsigned> coset;
        unsigned e = i % gf_.n();
        do {
            coset.push_back(e);
            covered.insert(e);
            e = (2 * e) % gf_.n();
        } while (e != i % gf_.n());
        // Minimal polynomial = prod (x - alpha^e) over the coset,
        // computed with GF(2^m) coefficients; the result is binary.
        std::vector<unsigned> mp{1}; // coefficients in GF(2^m)
        for (unsigned exp : coset) {
            unsigned root = gf_.alphaPow(exp);
            std::vector<unsigned> next(mp.size() + 1, 0);
            for (std::size_t d = 0; d < mp.size(); ++d) {
                next[d + 1] ^= mp[d];           // x * mp
                next[d] ^= gf_.mul(mp[d], root); // root * mp
            }
            mp = std::move(next);
        }
        std::vector<std::uint8_t> mp2(mp.size());
        for (std::size_t d = 0; d < mp.size(); ++d) {
            fcos_assert(mp[d] <= 1,
                        "minimal polynomial has non-binary coefficient");
            mp2[d] = static_cast<std::uint8_t>(mp[d]);
        }
        gen_ = polyMulGf2(gen_, mp2);
    }
    unsigned deg = static_cast<unsigned>(gen_.size() - 1);
    fcos_assert(deg < gf_.n(), "degenerate BCH parameters");
    k_ = gf_.n() - deg;
}

BitVector
BchCode::encode(const BitVector &data) const
{
    fcos_assert(data.size() == k_, "encode expects %u data bits, got %zu",
                k_, data.size());
    unsigned r = parityBits();
    BitVector cw(n(), false);
    // Systematic placement: data occupies the high-order positions.
    for (unsigned i = 0; i < k_; ++i)
        cw.set(r + i, data.get(i));
    // Parity = remainder of x^r * d(x) mod g(x); long division in GF(2).
    std::vector<std::uint8_t> rem(r, 0);
    for (int i = static_cast<int>(k_) - 1; i >= 0; --i) {
        std::uint8_t feedback =
            static_cast<std::uint8_t>(data.get(i)) ^ rem[r - 1];
        for (int j = static_cast<int>(r) - 1; j > 0; --j)
            rem[j] = rem[j - 1] ^ (feedback ? gen_[j] : 0);
        rem[0] = feedback ? gen_[0] : 0;
    }
    for (unsigned j = 0; j < r; ++j)
        cw.set(j, rem[j]);
    return cw;
}

std::vector<unsigned>
BchCode::syndromes(const BitVector &word) const
{
    std::vector<unsigned> syn(2 * t_, 0);
    for (unsigned e = 0; e < n(); ++e) {
        if (!word.get(e))
            continue;
        for (unsigned j = 0; j < 2 * t_; ++j)
            syn[j] ^= gf_.alphaPow(e * (j + 1));
    }
    return syn;
}

BchDecodeResult
BchCode::decode(BitVector &word) const
{
    fcos_assert(word.size() == n(), "decode expects %u bits, got %zu", n(),
                word.size());
    std::vector<unsigned> syn = syndromes(word);
    bool clean = std::all_of(syn.begin(), syn.end(),
                             [](unsigned s) { return s == 0; });
    if (clean)
        return {true, 0};

    // Berlekamp-Massey: find the error-locator polynomial sigma(x).
    std::vector<unsigned> sigma{1}, prev{1};
    unsigned l = 0, m_gap = 1;
    unsigned b = 1;
    for (unsigned iter = 0; iter < 2 * t_; ++iter) {
        unsigned d = syn[iter];
        for (unsigned i = 1; i <= l && i < sigma.size(); ++i)
            d ^= gf_.mul(sigma[i], syn[iter - i]);
        if (d == 0) {
            ++m_gap;
            continue;
        }
        std::vector<unsigned> t_poly = sigma;
        unsigned coef = gf_.div(d, b);
        if (sigma.size() < prev.size() + m_gap)
            sigma.resize(prev.size() + m_gap, 0);
        for (std::size_t i = 0; i < prev.size(); ++i)
            sigma[i + m_gap] ^= gf_.mul(coef, prev[i]);
        if (2 * l <= iter) {
            l = iter + 1 - l;
            prev = std::move(t_poly);
            b = d;
            m_gap = 1;
        } else {
            ++m_gap;
        }
    }
    if (l > t_)
        return {false, 0}; // more errors than the code can locate

    // Chien search: roots of sigma are the inverse error locations.
    std::vector<unsigned> positions;
    for (unsigned e = 0; e < n(); ++e) {
        unsigned x = gf_.alphaPow((gf_.n() - e) % gf_.n()); // alpha^-e
        unsigned acc = 0, xp = 1;
        for (std::size_t i = 0; i < sigma.size(); ++i) {
            acc ^= gf_.mul(sigma[i], xp);
            xp = gf_.mul(xp, x);
        }
        if (acc == 0)
            positions.push_back(e);
    }
    if (positions.size() != l)
        return {false, 0}; // locator does not split: uncorrectable

    for (unsigned e : positions)
        word.set(e, !word.get(e));

    // Verify: all syndromes must vanish after correction.
    std::vector<unsigned> syn2 = syndromes(word);
    bool ok = std::all_of(syn2.begin(), syn2.end(),
                          [](unsigned s) { return s == 0; });
    return {ok, ok ? static_cast<unsigned>(positions.size()) : 0};
}

BitVector
BchCode::extractData(const BitVector &word) const
{
    fcos_assert(word.size() == n(), "extract expects %u bits", n());
    return word.slice(parityBits(), k_);
}

std::size_t
PageCodec::encodedBits(std::size_t data_bits) const
{
    std::size_t chunks = (data_bits + code_.k() - 1) / code_.k();
    return chunks * code_.n();
}

BitVector
PageCodec::encodePage(const BitVector &data) const
{
    std::size_t chunks = (data.size() + code_.k() - 1) / code_.k();
    BitVector out(chunks * code_.n());
    for (std::size_t c = 0; c < chunks; ++c) {
        std::size_t begin = c * code_.k();
        std::size_t len = std::min<std::size_t>(code_.k(),
                                                data.size() - begin);
        BitVector chunk(code_.k(), false);
        chunk.paste(0, data.slice(begin, len));
        out.paste(c * code_.n(), code_.encode(chunk));
    }
    return out;
}

BchDecodeResult
PageCodec::decodePage(const BitVector &encoded, std::size_t data_bits,
                      BitVector *data_out) const
{
    std::size_t chunks = (data_bits + code_.k() - 1) / code_.k();
    fcos_assert(encoded.size() == chunks * code_.n(),
                "encoded page has %zu bits, expected %zu", encoded.size(),
                chunks * code_.n());
    BchDecodeResult total{true, 0};
    BitVector data(chunks * code_.k());
    for (std::size_t c = 0; c < chunks; ++c) {
        BitVector cw = encoded.slice(c * code_.n(), code_.n());
        BchDecodeResult r = code_.decode(cw);
        if (!r.ok)
            total.ok = false;
        total.corrected += r.corrected;
        data.paste(c * code_.k(), code_.extractData(cw));
    }
    if (data_out)
        *data_out = data.slice(0, data_bits);
    return total;
}

} // namespace fcos::rel
