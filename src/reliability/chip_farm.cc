#include "reliability/chip_farm.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"
#include "util/mathutil.h"

namespace fcos::rel {

ChipFarm::ChipFarm() : ChipFarm(Config{}) {}

ChipFarm::ChipFarm(const Config &cfg) : cfg_(cfg), model_(cfg.vth)
{
    fcos_assert(cfg.chips > 0 && cfg.blocksPerChip > 0,
                "empty chip farm");
    Rng rng = Rng::seeded(cfg.seed);
    qualities_.reserve(static_cast<std::size_t>(cfg.chips) *
                       cfg.blocksPerChip);
    double sigma = cfg.vth.blockQualitySigma;
    for (std::uint32_t c = 0; c < cfg.chips; ++c) {
        Rng chip_rng = rng.fork(c);
        // Wafer- and chip-level shared variation (40% of the budget),
        // block-level independent variation (60%).
        double chip_part = chip_rng.gaussian(0.0, sigma * 0.4);
        for (std::uint32_t b = 0; b < cfg.blocksPerChip; ++b) {
            double block_part = chip_rng.gaussian(0.0, sigma * 0.6);
            qualities_.push_back(std::exp(chip_part + block_part));
        }
    }
}

double
ChipFarm::blockQuality(std::size_t index) const
{
    fcos_assert(index < qualities_.size(), "block index out of range");
    return qualities_[index];
}

std::uint64_t
ChipFarm::totalWordlines() const
{
    return static_cast<std::uint64_t>(qualities_.size()) *
           cfg_.wordlinesPerBlock;
}

double
ChipFarm::blockRber(nand::ProgramMode mode, double esp_factor,
                    const OperatingCondition &cond,
                    std::size_t index) const
{
    double q = qualities_[index];
    switch (mode) {
      case nand::ProgramMode::SlcRegular:
        return model_.rberSlc(cond, q);
      case nand::ProgramMode::SlcEsp:
        return model_.rberEsp(esp_factor, cond, q);
      case nand::ProgramMode::Mlc:
        return model_.rberMlc(cond, q);
      case nand::ProgramMode::Tlc:
        return model_.rberTlc(cond, q);
    }
    fcos_panic("unknown mode");
}

double
ChipFarm::averageRber(nand::ProgramMode mode,
                      const OperatingCondition &cond) const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < qualities_.size(); ++i)
        sum += blockRber(mode, 1.0, cond, i);
    return sum / static_cast<double>(qualities_.size());
}

ChipFarm::EspPoint
ChipFarm::espRber(double esp_factor, const OperatingCondition &cond) const
{
    std::vector<double> rbers(qualities_.size());
    for (std::size_t i = 0; i < qualities_.size(); ++i)
        rbers[i] = blockRber(nand::ProgramMode::SlcEsp, esp_factor, cond,
                             i);
    EspPoint p;
    p.worst = percentile(rbers, 100.0);
    p.median = percentile(rbers, 50.0);
    p.best = percentile(rbers, 0.0);
    return p;
}

ChipFarm::Campaign
ChipFarm::runCampaign(const nand::PageMeta &meta,
                      const OperatingCondition &cond,
                      std::uint64_t total_bits, std::uint64_t seed) const
{
    Campaign c;
    c.bits = total_bits;
    Rng rng = Rng::seeded(seed);
    std::uint64_t bits_per_block =
        total_bits / qualities_.size();
    std::uint64_t remainder = total_bits % qualities_.size();
    for (std::size_t i = 0; i < qualities_.size(); ++i) {
        std::uint64_t bits = bits_per_block + (i < remainder ? 1 : 0);
        if (bits == 0)
            continue;
        double rber = blockRber(meta.mode, meta.espFactor, cond, i);
        double mean = rber * static_cast<double>(bits);
        c.expectedErrors += mean;
        c.errors += rng.fork(i).poisson(mean);
    }
    return c;
}

} // namespace fcos::rel
